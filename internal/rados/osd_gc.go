package rados

import (
	"context"
	"fmt"
	"time"

	"repro/internal/retry"
)

// Deferred dedup GC. The manifest's primary is the only party that
// mutates block references: applying a manifest write or remove (see
// applyOp) enqueues ref deltas for the symmetric difference of the old
// and new block sets, and this sweeper delivers them to the blocks'
// primaries later, outside every lock. Each delta names its manifest
// and the manifest version that produced it, so application is
// idempotent at the block itself (see blockRefApply) — resends, the
// same diff enqueued by two primaries across a failover, and late
// deltas superseded by a newer transition all collapse. A delta that
// cannot be delivered this sweep stays queued for the next; the OpID
// (stamped once at enqueue) additionally short-circuits resends through
// the receiver's replay cache. The sweep then reclaims blocks this
// daemon leads whose reference count is zero and whose last touch is
// older than the grace window; the reclaim travels through the ordinary
// op path, so the removal replicates and scrub stays convergent.

// refDelta is one queued reference adjustment.
type refDelta struct {
	pool     string
	block    string
	manifest string // referencing manifest object
	ver      uint64 // manifest version whose transition produced this delta
	present  bool   // true: reference added; false: reference dropped
	opID     uint64 // stamped at enqueue; constant across delivery retries
}

// queueRefDeltas diffs a manifest object's old and new unique block
// sets and enqueues the resulting adds/drops, anchored to the manifest
// version the transition stamped. Either set may be nil (flat data,
// create, remove). Called from applyOp under the manifest's slot lock —
// the queue append is the only work done here; no RPC leaves this
// function.
func (o *OSD) queueRefDeltas(pool, manifest string, ver uint64, oldSet, newSet map[string]bool) {
	if len(oldSet) == 0 && len(newSet) == 0 {
		return
	}
	var deltas []refDelta
	for name := range newSet {
		if !oldSet[name] {
			deltas = append(deltas, refDelta{
				pool: pool, block: name, manifest: manifest, ver: ver,
				present: true, opID: o.gcSeq.Add(1),
			})
		}
	}
	for name := range oldSet {
		if !newSet[name] {
			deltas = append(deltas, refDelta{
				pool: pool, block: name, manifest: manifest, ver: ver,
				present: false, opID: o.gcSeq.Add(1),
			})
		}
	}
	if len(deltas) == 0 {
		return
	}
	o.gcMu.Lock()
	o.refQ = append(o.refQ, deltas...)
	o.gcMu.Unlock()
}

// QueuedRefDeltas reports the backlog (for quiescence checks in tests
// and the chaos harness).
func (o *OSD) QueuedRefDeltas() int {
	o.gcMu.Lock()
	defer o.gcMu.Unlock()
	return len(o.refQ)
}

func (o *OSD) gcLoop(stop chan struct{}) {
	defer o.wg.Done()
	ticker := time.NewTicker(o.cfg.GCInterval)
	defer ticker.Stop()
	for tick := 0; ; tick++ {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		o.SweepBlocks(o.cfg.GCGrace)
		// Periodically run the dedup scrub too, so references orphaned
		// by an abandoned history (failover double-applies the sweep's
		// anchors cannot expire) heal without operator action.
		if tick%8 == 7 {
			o.mu.Lock()
			m := o.osdMap
			o.mu.Unlock()
			if m != nil {
				for pool := range m.Pools {
					o.RefScrub(pool)
				}
			}
		}
	}
}

// SweepBlocks runs one GC pass: deliver every queued ref delta, then
// reclaim unreferenced blocks older than grace in the PGs this daemon
// leads. Returns the deltas delivered and blocks reclaimed; harnesses
// loop until both are zero (with the queue also drained) to reach
// dedup quiescence. A grace of zero reclaims every unreferenced block
// immediately — only safe on a quiesced cluster, since grace is what
// protects the stat-then-manifest window of an in-flight WriteDeduped.
func (o *OSD) SweepBlocks(grace time.Duration) (delivered, reclaimed int) {
	o.gcMu.Lock()
	pending := o.refQ
	o.refQ = nil
	o.gcMu.Unlock()

	var requeue []refDelta
	for _, d := range pending {
		op := OpBlockIncref
		if !d.present {
			op = OpBlockDecref
		}
		rep, err := o.sendBlockOp(OpRequest{
			Pool: d.pool, Object: d.block, Op: op,
			Key: d.manifest, Count: int64(d.ver), OpID: d.opID,
		})
		if err != nil {
			// Undeliverable this sweep (primary down, map churn): the
			// delta — OpID and all — waits for the next one. Delivery
			// order is irrelevant: the version anchor decides.
			requeue = append(requeue, d)
			continue
		}
		if rep.Result != OK && rep.Result != ENOENT {
			requeue = append(requeue, d)
			continue
		}
		// ENOENT means the block is gone: a decref against a reclaimed
		// block is a no-op, and an incref against one can only follow a
		// manifest that outlived its blocks — scrub-visible corruption
		// the audit reports; retrying would not repair it.
		delivered++
	}
	if len(requeue) > 0 {
		o.gcMu.Lock()
		o.refQ = append(requeue, o.refQ...)
		o.gcMu.Unlock()
	}

	for _, cand := range o.reclaimCandidates(grace) {
		rep, err := o.sendBlockOp(OpRequest{
			Pool: cand.pool, Object: cand.block, Op: OpBlockReclaim,
			Count: int64(grace), OpID: o.gcSeq.Add(1),
		})
		// ECANCELED is the guard winning a race (a stat or incref
		// touched the block between scan and reclaim) — correct, not
		// an error. ENOENT means someone else already reclaimed it.
		if err == nil && rep.Result == OK {
			reclaimed++
		}
	}
	return delivered, reclaimed
}

// reclaimCand is a block that looked reclaimable during the scan; the
// decision is re-made under the slot lock by OpBlockReclaim.
type reclaimCand struct {
	pool  string
	block string
}

// reclaimCandidates scans the PGs this daemon leads for blocks with
// zero references whose last touch is older than grace. The touch
// clock is primary-local (deliberately unreplicated), so after a
// failover the new primary's clock may predate a client's OpBlockStat
// on the old one; a nonzero-grace reclaim therefore also requires that
// *this* primary already saw the block unreferenced on an earlier
// sweep at the current map epoch — the first qualifying observation
// only marks the slot, opening a fresh grace period of at least one
// sweep interval after any primary change. A zero grace skips the
// two-sweep rule: it is the quiesced-cluster mode harnesses drive
// explicitly, where no write can be in flight.
func (o *OSD) reclaimCandidates(grace time.Duration) []reclaimCand {
	o.mu.Lock()
	m := o.osdMap
	pgids := make([]PGID, 0, len(o.pgs))
	for id := range o.pgs {
		pgids = append(pgids, id)
	}
	o.mu.Unlock()
	sweep := o.gcSweepN.Add(1)

	var out []reclaimCand
	for _, id := range pgids {
		pi, ok := m.Pools[id.Pool]
		if !ok {
			continue
		}
		acting := OSDsForPG(m, id.Pool, id.PG, pi.Replicas)
		if len(acting) == 0 || acting[0] != o.cfg.ID {
			continue
		}
		for _, e := range o.getPG(id).entries() {
			e.mu.Lock()
			if e.obj != nil && IsBlockName(e.obj.Name) {
				switch {
				case blockRefs(e.obj) != 0 || time.Since(e.touch) < grace:
					e.gcSweep = 0 // disqualified; any future reclaim starts over
				case grace == 0 || (e.gcEpoch == m.Epoch && e.gcSweep > 0 && e.gcSweep < sweep):
					out = append(out, reclaimCand{pool: id.Pool, block: e.obj.Name})
				default:
					e.gcSweep, e.gcEpoch = sweep, m.Epoch
				}
			}
			e.mu.Unlock()
		}
	}
	return out
}

// RefScrub reconciles the reference sets of the blocks this daemon
// leads against the manifests they cite — the dedup arm of scrub.
// Version anchors make delta delivery idempotent, but they cannot kill
// an entry from an abandoned history: a primary that applied a manifest
// write at version v, queued its diff, and then lost that version to a
// failover re-apply of a *different* write leaves a reference the
// surviving history never supersedes. RefScrub reads each cited
// manifest, and where the manifest's current version is newer than the
// entry's anchor and disagrees with it, issues a corrective delta
// anchored at the manifest's version — through the ordinary op path, so
// the repair replicates. In-flight deltas stay safe: whichever of the
// repair and the delta carries the newer anchor wins at the block.
// Returns the number of corrective deltas applied.
func (o *OSD) RefScrub(pool string) (repaired int) {
	type cited struct {
		block    string
		manifest string
		ver      uint64
		present  bool
	}
	var work []cited
	o.mu.Lock()
	m := o.osdMap
	pgids := make([]PGID, 0, len(o.pgs))
	for id := range o.pgs {
		pgids = append(pgids, id)
	}
	o.mu.Unlock()
	for _, id := range pgids {
		pi, ok := m.Pools[id.Pool]
		if !ok || id.Pool != pool {
			continue
		}
		acting := OSDsForPG(m, id.Pool, id.PG, pi.Replicas)
		if len(acting) == 0 || acting[0] != o.cfg.ID {
			continue
		}
		for _, e := range o.getPG(id).entries() {
			e.mu.Lock()
			if e.obj != nil && IsBlockName(e.obj.Name) {
				for name, ent := range parseRefset(e.obj) {
					work = append(work, cited{
						block: e.obj.Name, manifest: name,
						ver: ent.ver, present: ent.present,
					})
				}
			}
			e.mu.Unlock()
		}
	}

	for _, w := range work {
		rep, err := o.sendBlockOp(OpRequest{Pool: pool, Object: w.manifest, Op: OpRead})
		if err != nil {
			continue // unverifiable this pass; the next scrub retries
		}
		var want bool
		var mver uint64
		switch rep.Result {
		case OK:
			mver = rep.Version
			want = manifestBlockSet(rep.Data)[w.block]
		case ENOENT:
			// Tombstoned (or never-written) manifest: no reply version to
			// anchor on, so anchor one past the entry — a genuinely newer
			// in-flight delta still outranks the repair.
			mver = w.ver + 1
		default:
			continue
		}
		if mver <= w.ver || want == w.present {
			continue
		}
		op := OpBlockDecref
		if want {
			op = OpBlockIncref
		}
		r2, err := o.sendBlockOp(OpRequest{
			Pool: pool, Object: w.block, Op: op,
			Key: w.manifest, Count: int64(mver), OpID: o.gcSeq.Add(1),
		})
		if err == nil && r2.Result == OK {
			repaired++
		}
	}
	return repaired
}

// sendBlockOp routes one block op to the block's primary with the same
// stale-map retry discipline as the client library — except the request
// arrives pre-stamped (the OpID must survive requeues across sweeps,
// not just resends within one call). A self-addressed op short-circuits
// into handleOp directly rather than crossing the fabric.
func (o *OSD) sendBlockOp(req OpRequest) (OpReply, error) {
	const maxRetries = 4
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var last OpReply
	for attempt := 0; attempt < maxRetries; attempt++ {
		if attempt > 1 {
			if !retry.Backoff(ctx, attempt-2, 2*time.Millisecond, 40*time.Millisecond) {
				return last, ctx.Err()
			}
		}
		o.mu.Lock()
		m := o.osdMap
		o.mu.Unlock()
		_, acting, err := Locate(m, req.Pool, req.Object)
		if err != nil {
			return OpReply{}, err
		}
		req.Epoch = m.Epoch
		var rep OpReply
		if acting[0] == o.cfg.ID {
			rep = o.handleOp(ctx, o.Addr(), req)
		} else {
			resp, err := o.net.Call(ctx, o.Addr(), OSDAddr(acting[0]), req)
			if err != nil {
				// Peer unreachable: refresh the map and retry routing.
				if fresh, merr := o.monc.GetOSDMap(ctx); merr == nil {
					o.updateMap(fresh)
				}
				continue
			}
			var ok bool
			rep, ok = resp.(OpReply)
			if !ok {
				return OpReply{}, fmt.Errorf("osd.%d: unexpected block-op reply %T", o.cfg.ID, resp)
			}
		}
		if rep.Result == EMapStale {
			last = rep
			if fresh, merr := o.monc.GetOSDMap(ctx); merr == nil {
				o.updateMap(fresh)
			}
			continue
		}
		return rep, nil
	}
	return last, fmt.Errorf("osd.%d: block op %s on %s: %w", o.cfg.ID, req.Op, req.Object, ErrRetriesExhausted)
}

// DedupBlockCount reports how many block objects this daemon leads in
// pool, and how many of them are unreferenced (tests and benches use it
// to watch reclamation make progress).
func (o *OSD) DedupBlockCount(pool string) (blocks, unreferenced int) {
	_, bl := o.dedupCensus(pool)
	for _, refs := range bl {
		blocks++
		if refs == 0 {
			unreferenced++
		}
	}
	return blocks, unreferenced
}
