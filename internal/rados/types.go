// Package rados implements the reliable distributed object store that
// Malacology re-purposes (Section 4.4 of the paper): object storage
// daemons (OSDs) holding replicated placement groups of objects, each
// object a bytestream plus a sorted key-value database (omap) plus
// extended attributes; primary-copy replication; epoch-guarded
// operations; peer-to-peer gossip of cluster maps; background scrub; and
// dynamically installed object interface classes executed next to the
// data (Section 4.2). It is the durability substrate under both Mantle
// (policy objects) and ZLog (log entry storage).
package rados

import (
	"errors"
	"fmt"

	"repro/internal/types"
	"repro/internal/wire"
)

// OpCode enumerates object operations.
type OpCode int

// Object operations.
const (
	OpRead OpCode = iota
	OpWriteFull
	OpAppend
	OpStat
	OpRemove
	OpCreate
	OpOmapGet
	OpOmapSet
	OpOmapDel
	OpOmapList
	OpGetXattr
	OpSetXattr
	OpCall // invoke an object-class method

	// Dedup block operations (content-addressed immutable blocks named
	// by their SHA-256; see dedup.go).
	OpBlockStat    // which of req.Keys exist here (batched presence probe; read-touches the reclaim clock)
	OpBlockWrite   // create-if-absent write of one block; a duplicate is an ack + touch, never a rewrite
	OpBlockIncref  // add req.Count manifest references to a block
	OpBlockDecref  // drop req.Count manifest references from a block
	OpBlockReclaim // remove the block iff unreferenced and outside the grace window (req.Count ns)
)

func (o OpCode) String() string {
	names := [...]string{"read", "write-full", "append", "stat", "remove",
		"create", "omap-get", "omap-set", "omap-del", "omap-list",
		"getxattr", "setxattr", "call",
		"block-stat", "block-write", "block-incref", "block-decref", "block-reclaim"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ResultCode is the outcome class of an operation.
type ResultCode int

// Result codes (mirroring the errno-style results Ceph classes use).
const (
	OK ResultCode = iota
	ENOENT
	EEXIST
	ESTALE // application-level staleness (e.g. a sealed epoch in a class)
	EINVAL
	EIO
	ECANCELED // class method explicitly aborted the transaction
	// EMapStale is cluster-map staleness: the sender's OSDMap epoch is
	// out of date or placement moved. The client library retries it
	// transparently after a map refresh; it never reaches applications.
	EMapStale
)

func (r ResultCode) String() string {
	names := [...]string{"OK", "ENOENT", "EEXIST", "ESTALE", "EINVAL", "EIO", "ECANCELED", "EMAPSTALE"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("rc(%d)", int(r))
}

// Errors surfaced by the client.
var (
	ErrNotFound = errors.New("rados: object not found")
	ErrExists   = errors.New("rados: object exists")
	ErrStale    = errors.New("rados: stale map epoch")
	ErrInval    = errors.New("rados: invalid argument")
	ErrIO       = errors.New("rados: io error")
	ErrCanceled = errors.New("rados: operation canceled by class")
	// ErrRetriesExhausted wraps the final failure after the client's
	// map-refresh retry budget is spent; callers match it with errors.Is.
	ErrRetriesExhausted = errors.New("rados: retries exhausted")
)

// ErrFor converts a result code to a sentinel error (nil for OK).
func ErrFor(rc ResultCode, detail string) error {
	var base error
	switch rc {
	case OK:
		return nil
	case ENOENT:
		base = ErrNotFound
	case EEXIST:
		base = ErrExists
	case ESTALE, EMapStale:
		base = ErrStale
	case EINVAL:
		base = ErrInval
	case ECANCELED:
		base = ErrCanceled
	default:
		base = ErrIO
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// OpRequest is one object operation addressed to the primary OSD of the
// object's placement group.
type OpRequest struct {
	Pool   string
	Object string
	// Epoch is the sender's OSDMap epoch; daemons reject ops from
	// clients with older maps (ESTALE) so that interface changes and
	// placement changes are observed before I/O continues.
	Epoch types.Epoch
	Op    OpCode
	// OpID identifies one logical client operation across resends: the
	// client stamps it once before its retry loop, and the primary's
	// replay cache returns the recorded reply for a duplicate (from,
	// OpID) instead of re-applying a non-idempotent mutation (an append
	// whose ack was lost must not double-apply). Zero means unstamped.
	OpID uint64

	Data   []byte            // write-full / append payload
	Key    string            // omap/xattr key
	Keys   []string          // omap multi-get
	KV     map[string][]byte // omap-set payload
	Class  string            // OpCall: class name
	Method string            // OpCall: method name
	Input  []byte            // OpCall: method input
	// Count is the op-specific scalar of the dedup block ops: the
	// reference delta for OpBlockIncref/OpBlockDecref (a manifest's
	// unique block set counts once however many extents reuse the
	// block), and the reclaim grace window in nanoseconds for
	// OpBlockReclaim (re-checked under the block's slot lock so a
	// concurrent stat or incref wins the race against the sweeper).
	Count int64

	// Replica marks a primary-to-replica forward; replicas apply without
	// re-forwarding.
	Replica bool
	// PrevVersion/NewVersion carry the primary's per-object version
	// stamps on a replica forward: the replica applies only once its
	// local copy reaches PrevVersion (buffering out-of-order arrivals of
	// the parallel fan-out) and lands on NewVersion afterwards.
	PrevVersion uint64
	NewVersion  uint64
	// ExpectedVersion, when > 0 with OpCall/writes, is reserved for
	// optimistic guards (unused by the shipped classes).
	ExpectedVersion uint64
}

// OpReply carries the result of an OpRequest.
//
// Replies are retained verbatim by the primary's replay cache, so the
// copy-on-write discipline documented on Object extends to them: Data,
// KV values, and Keys may alias stored object state and must never be
// written in place — a handler that wants a scratch buffer must clone
// first (the cowalias pass machine-checks this).
type OpReply struct {
	Result  ResultCode
	Detail  string
	Data    []byte
	KV      map[string][]byte
	Keys    []string
	Version uint64      // object version after the op
	Size    int64       // OpStat
	Epoch   types.Epoch // daemon's map epoch (lets stale clients resync)
}

// OSDAddr is the wire address of an OSD.
func OSDAddr(id int) wire.Addr {
	return wire.Addr(types.EntityName(types.EntityOSD, id))
}

// gossipMsg carries a peer's map epoch; a behind peer replies asking for
// the full map, which the sender pushes.
type gossipMsg struct {
	From  int
	Epoch types.Epoch
	// Map is attached when the sender knows the receiver is behind.
	Map *types.OSDMap
}

// backfillMsg pushes full PG contents to a (possibly new) replica after
// a map change.
type backfillMsg struct {
	Pool    string
	PG      int
	Objects []*Object
	Epoch   types.Epoch
	// Force replaces objects regardless of version; used by scrub repair
	// where the primary's copy is authoritative.
	Force bool
	// Tombstones carries, for Force pushes, the sender's deleted slots
	// and their versions at scan time. The receiver's deletion pass
	// orders its own entries against these instead of purging every
	// name the push omitted — a forward for a just-created object that
	// lands between the sender's scan and the pass must survive.
	Tombstones map[string]uint64
}

// scrubMsg asks a replica for a digest of its PG contents.
type scrubMsg struct {
	Pool string
	PG   int
}

// scrubReply returns per-object checksums for a PG.
type scrubReply struct {
	Digests map[string]uint64
}
