package rados

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Object is the RADOS storage unit: a bytestream, a sorted key-value
// database (omap), and extended attributes. Class methods compose these
// native interfaces transactionally (Section 4.2: "an interface that
// atomically updates a matrix stored in the bytestream and an index of
// the matrix stored in the key-value database").
type Object struct {
	Name    string            `json:"name"`
	Data    []byte            `json:"data"`
	Omap    map[string][]byte `json:"omap"`
	Xattrs  map[string][]byte `json:"xattrs"`
	Version uint64            `json:"version"`
}

// NewObject creates an empty object.
func NewObject(name string) *Object {
	return &Object{
		Name:   name,
		Omap:   make(map[string][]byte),
		Xattrs: make(map[string][]byte),
	}
}

// clone deep-copies the object (for backfill shipping).
func (o *Object) clone() *Object {
	c := NewObject(o.Name)
	c.Version = o.Version
	c.Data = append([]byte(nil), o.Data...)
	for k, v := range o.Omap {
		c.Omap[k] = append([]byte(nil), v...)
	}
	for k, v := range o.Xattrs {
		c.Xattrs[k] = append([]byte(nil), v...)
	}
	return c
}

// digest returns a checksum over the full object state, used by scrub.
func (o *Object) digest() uint64 {
	h := fnv.New64a()
	write := func(b []byte) { h.Write(b); h.Write([]byte{0}) } //nolint:errcheck
	write([]byte(o.Name))
	write(o.Data)
	keys := make([]string, 0, len(o.Omap))
	for k := range o.Omap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write([]byte(k))
		write(o.Omap[k])
	}
	keys = keys[:0]
	for k := range o.Xattrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write([]byte(k))
		write(o.Xattrs[k])
	}
	return h.Sum64()
}

// OmapKeysSorted lists omap keys with the given prefix in sorted order
// (the omap is a *sorted* kv database).
func (o *Object) OmapKeysSorted(prefix string) []string {
	var keys []string
	for k := range o.Omap {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// pg is one placement group replica held by an OSD. All object access
// within a PG is serialized by its mutex — this is what makes class
// method execution atomic.
type pg struct {
	mu      sync.Mutex
	id      PGID
	objects map[string]*Object
}

func newPG(id PGID) *pg {
	return &pg{id: id, objects: make(map[string]*Object)}
}

// get returns the named object, optionally creating it.
func (p *pg) get(name string, create bool) *Object {
	o, ok := p.objects[name]
	if !ok && create {
		o = NewObject(name)
		p.objects[name] = o
	}
	return o
}

// snapshot deep-copies the PG contents for backfill.
func (p *pg) snapshot() []*Object {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Object, 0, len(p.objects))
	names := make([]string, 0, len(p.objects))
	for n := range p.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, p.objects[n].clone())
	}
	return out
}

// digests returns per-object checksums for scrub comparison.
func (p *pg) digests() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.objects))
	for n, o := range p.objects {
		out[n] = o.digest()
	}
	return out
}
