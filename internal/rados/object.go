package rados

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/types"
)

// Object is the RADOS storage unit: a bytestream, a sorted key-value
// database (omap), and extended attributes. Class methods compose these
// native interfaces transactionally (Section 4.2: "an interface that
// atomically updates a matrix stored in the bytestream and an index of
// the matrix stored in the key-value database").
//
// Copy-on-write discipline: every mutation replaces the Data slice (and
// omap/xattr value slices) with a freshly allocated one rather than
// writing into the old backing array. That is what lets read replies
// alias the stored slices directly — zero copies on the in-process
// fabric — while a concurrent writer can never scribble under a reader.
// Callers of Read/GetXattr/OmapGet must treat returned bytes as
// immutable.
type Object struct {
	Name    string            `json:"name"`
	Data    []byte            `json:"data"`
	Omap    map[string][]byte `json:"omap"`
	Xattrs  map[string][]byte `json:"xattrs"`
	Version uint64            `json:"version"`
}

// NewObject creates an empty object.
func NewObject(name string) *Object {
	return &Object{
		Name:   name,
		Omap:   make(map[string][]byte),
		Xattrs: make(map[string][]byte),
	}
}

// clone deep-copies the object (for backfill shipping).
func (o *Object) clone() *Object {
	c := NewObject(o.Name)
	c.Version = o.Version
	c.Data = append([]byte(nil), o.Data...)
	for k, v := range o.Omap {
		c.Omap[k] = append([]byte(nil), v...)
	}
	for k, v := range o.Xattrs {
		c.Xattrs[k] = append([]byte(nil), v...)
	}
	return c
}

// digest returns a checksum over the full object state, used by scrub.
func (o *Object) digest() uint64 {
	h := fnv.New64a()
	write := func(b []byte) { h.Write(b); h.Write([]byte{0}) } //nolint:errcheck
	write([]byte(o.Name))
	write(o.Data)
	keys := make([]string, 0, len(o.Omap))
	for k := range o.Omap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write([]byte(k))
		write(o.Omap[k])
	}
	keys = keys[:0]
	for k := range o.Xattrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write([]byte(k))
		write(o.Xattrs[k])
	}
	return h.Sum64()
}

// OmapKeysSorted lists omap keys with the given prefix in sorted order
// (the omap is a *sorted* kv database).
func (o *Object) OmapKeysSorted(prefix string) []string {
	var keys []string
	for k := range o.Omap {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// objEntry is the per-object concurrency slot inside a PG. Each object
// has its own mutex, so an operation on object A never waits behind
// object B's write or replication. The slot outlives the object itself:
// removal leaves a tombstone (obj == nil) whose version keeps advancing,
// which is what lets replicas order a remove against the writes around
// it and lets backfill distinguish "never existed" from "deleted newer
// than your copy".
type objEntry struct {
	mu  sync.Mutex
	obj *Object // guarded by mu; nil = tombstone (removed or never created)
	// ver is the authoritative mutation counter for this name. It is
	// mirrored into obj.Version while the object exists and survives
	// tombstoning so the per-object order is total across the object's
	// whole lifetime.
	ver uint64 // guarded by mu
	// applied is closed and replaced on every state change; replica
	// appliers holding an out-of-order forward wait on it for the
	// preceding mutation to land.
	applied chan struct{} // guarded by mu
	// touch is the last time this slot was mutated or, for dedup
	// blocks, stat-probed by a client assembling a manifest. It is the
	// GC grace clock: a zero-reference block is reclaimable only once
	// touch is older than the grace window, which closes the race
	// where a client is told a block exists and then writes a manifest
	// referencing it. Primary-local and deliberately outside the scrub
	// digest — replicas need not agree on it.
	touch time.Time // guarded by mu
	// gcSweep/gcEpoch record the reclaim scan (OSD.gcSweepN) and map
	// epoch at which this primary last saw the block unreferenced and
	// grace-expired. Because touch is primary-local, a failed-over
	// primary inherits a stale clock; requiring a second qualifying
	// observation — same primary, same epoch, a later sweep — re-opens
	// a full grace window after any failover before a block can go.
	gcSweep uint64      // guarded by mu
	gcEpoch types.Epoch // guarded by mu
}

// signalLocked wakes version-order waiters. Caller holds e.mu.
func (e *objEntry) signalLocked() {
	close(e.applied)
	e.applied = make(chan struct{})
}

// bumpLocked advances the version after a local mutation, keeps the
// stored object's stamp in sync, refreshes the GC touch clock, and
// wakes waiters. Caller holds e.mu.
func (e *objEntry) bumpLocked() {
	e.ver++
	if e.obj != nil {
		e.obj.Version = e.ver
	}
	e.touch = time.Now()
	e.signalLocked()
}

// materializeLocked returns the live object, creating an empty one in
// place of a tombstone. Caller holds e.mu.
func (e *objEntry) materializeLocked(name string) *Object {
	if e.obj == nil {
		e.obj = NewObject(name)
		e.obj.Version = e.ver
	}
	return e.obj
}

// pg is one placement group replica held by an OSD. The PG mutex guards
// only the name→slot map; object state is protected per object by its
// slot's mutex, so operations on distinct objects in one PG proceed in
// parallel. Class method atomicity is per object — exactly the unit the
// paper's interfaces require — not per PG.
type pg struct {
	mu      sync.Mutex
	id      PGID
	objects map[string]*objEntry // guarded by mu
	// admit is the serial-baseline admission token: ReplicateSerial
	// allows one operation per PG at a time by holding this token (not a
	// mutex) across its apply+replicate window.
	admit chan struct{}
}

func newPG(id PGID) *pg {
	return &pg{
		id:      id,
		objects: make(map[string]*objEntry),
		admit:   make(chan struct{}, 1),
	}
}

// entry returns the slot for name, creating it on first touch. Slots
// are never deleted by object removal, so concurrent holders and
// version-order waiters always share one coherent slot per name.
func (p *pg) entry(name string) *objEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.objects[name]
	if !ok {
		e = &objEntry{applied: make(chan struct{})}
		p.objects[name] = e
	}
	return e
}

// entries returns the current slots in sorted name order.
func (p *pg) entries() []*objEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.objects))
	for n := range p.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*objEntry, 0, len(names))
	for _, n := range names {
		out = append(out, p.objects[n])
	}
	return out
}

// slots returns a point-in-time copy of the name→slot map (the slots
// themselves are shared; lock each before reading its state).
func (p *pg) slots() map[string]*objEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]*objEntry, len(p.objects))
	for name, e := range p.objects {
		out[name] = e
	}
	return out
}

// tombstones returns the versions of the PG's deleted slots (obj ==
// nil with a nonzero version). A Force backfill ships them alongside
// the live snapshot so the receiver can order its own entries against
// the sender's deletions instead of purging blindly.
func (p *pg) tombstones() map[string]uint64 {
	p.mu.Lock()
	slots := make(map[string]*objEntry, len(p.objects))
	for name, e := range p.objects {
		slots[name] = e
	}
	p.mu.Unlock()
	out := make(map[string]uint64)
	for name, e := range slots {
		e.mu.Lock()
		if e.obj == nil && e.ver > 0 {
			out[name] = e.ver
		}
		e.mu.Unlock()
	}
	return out
}

// snapshot deep-copies the PG contents for backfill.
func (p *pg) snapshot() []*Object {
	var out []*Object
	for _, e := range p.entries() {
		e.mu.Lock()
		if e.obj != nil {
			out = append(out, e.obj.clone())
		}
		e.mu.Unlock()
	}
	return out
}

// digests returns per-object checksums for scrub comparison. Tombstones
// are invisible, matching a replica that never saw the object.
func (p *pg) digests() map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range p.entries() {
		e.mu.Lock()
		if e.obj != nil {
			out[e.obj.Name] = e.obj.digest()
		}
		e.mu.Unlock()
	}
	return out
}
