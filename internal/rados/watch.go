package rados

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// Watch/notify: clients register interest in an object and receive
// every notification sent to it — the RADOS primitive Ceph services use
// to coordinate around shared objects (and a natural companion to the
// class-based interfaces: a class mutates, a notify announces).
//
// Watches live in the primary OSD's memory. If the primary changes
// (failure, map change) the watch is lost, exactly as a Ceph watch
// times out; watchers detect this with WatchCheck and re-register.

// watchReq registers/unregisters a watcher on an object.
type watchReq struct {
	Pool    string
	Object  string
	Watcher wire.Addr // push endpoint
	ID      uint64    // client-chosen watch id
	Cancel  bool
}

// watchCheckReq asks the primary whether a watch is still registered.
type watchCheckReq struct {
	Pool    string
	Object  string
	ID      uint64
	Watcher wire.Addr
}

// notifyReq broadcasts a payload to an object's watchers.
type notifyReq struct {
	Pool    string
	Object  string
	Payload []byte
}

// notifyResp reports how many watchers acknowledged.
type notifyResp struct {
	Acked int
}

// NotifyEvent is delivered to watchers.
type NotifyEvent struct {
	Pool    string
	Object  string
	Payload []byte
}

// notifyPush is the wire form of an event push (includes the watch id
// so the client can route it).
type notifyPush struct {
	ID    uint64
	Event NotifyEvent
}

// watcherID identifies one registration: watch IDs are client-local, so
// the registry keys by (endpoint, id).
type watcherID struct {
	Addr wire.Addr
	ID   uint64
}

// watcherTable is the OSD-side registry.
type watcherTable struct {
	mu       sync.Mutex
	watchers map[string]map[watcherID]bool // keyed by pool/object
}

func newWatcherTable() *watcherTable {
	return &watcherTable{watchers: make(map[string]map[watcherID]bool)}
}

func watchKey(pool, object string) string { return pool + "/" + object }

func (w *watcherTable) add(pool, object string, id uint64, addr wire.Addr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := watchKey(pool, object)
	if w.watchers[k] == nil {
		w.watchers[k] = make(map[watcherID]bool)
	}
	w.watchers[k][watcherID{addr, id}] = true
}

func (w *watcherTable) remove(pool, object string, id uint64, addr wire.Addr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := watchKey(pool, object)
	delete(w.watchers[k], watcherID{addr, id})
	if len(w.watchers[k]) == 0 {
		delete(w.watchers, k)
	}
}

func (w *watcherTable) has(pool, object string, id uint64, addr wire.Addr) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.watchers[watchKey(pool, object)][watcherID{addr, id}]
}

func (w *watcherTable) snapshot(pool, object string) []watcherID {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []watcherID
	for wid := range w.watchers[watchKey(pool, object)] {
		out = append(out, wid)
	}
	return out
}

// handleWatch processes watch registration on the OSD.
func (o *OSD) handleWatch(r watchReq) OpReply {
	if r.Cancel {
		o.watchers.remove(r.Pool, r.Object, r.ID, r.Watcher)
		return OpReply{Result: OK}
	}
	o.watchers.add(r.Pool, r.Object, r.ID, r.Watcher)
	return OpReply{Result: OK}
}

// handleNotify pushes the payload to every watcher and counts acks.
func (o *OSD) handleNotify(ctx context.Context, r notifyReq) notifyResp {
	targets := o.watchers.snapshot(r.Pool, r.Object)
	acked := 0
	for _, wid := range targets {
		nctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := o.net.Call(nctx, o.Addr(), wid.Addr, notifyPush{
			ID:    wid.ID,
			Event: NotifyEvent{Pool: r.Pool, Object: r.Object, Payload: append([]byte(nil), r.Payload...)},
		})
		cancel()
		if err == nil {
			acked++
		} else {
			// Dead watcher: drop the registration (Ceph's watch timeout).
			o.watchers.remove(r.Pool, r.Object, wid.ID, wid.Addr)
		}
	}
	return notifyResp{Acked: acked}
}

// ---- client side ----

// WatchHandle is a registered watch.
type WatchHandle struct {
	c      *Client
	pool   string
	object string
	id     uint64
	events chan NotifyEvent
}

// Events returns the stream of notifications for this watch.
func (h *WatchHandle) Events() <-chan NotifyEvent { return h.events }

// Cancel unregisters the watch.
func (h *WatchHandle) Cancel(ctx context.Context) error {
	h.c.mu.Lock()
	delete(h.c.watches, h.id)
	h.c.mu.Unlock()
	_, err := h.c.doWatch(ctx, watchReq{
		Pool: h.pool, Object: h.object, ID: h.id, Watcher: h.c.self, Cancel: true,
	})
	return err
}

// Check reports whether the primary still holds this watch; false means
// the watch was lost (primary change) and should be re-registered.
func (h *WatchHandle) Check(ctx context.Context) (bool, error) {
	c := h.c
	c.mu.Lock()
	m := c.osdMap
	c.mu.Unlock()
	_, acting, err := Locate(m, h.pool, h.object)
	if err != nil {
		return false, err
	}
	resp, err := c.net.Call(ctx, c.self, OSDAddr(acting[0]), watchCheckReq{
		Pool: h.pool, Object: h.object, ID: h.id, Watcher: c.self,
	})
	if err != nil {
		return false, err
	}
	return resp.(bool), nil
}

// Watch registers for notifications on an object. The client's own
// endpoint starts listening on first use.
func (c *Client) Watch(ctx context.Context, pool, object string) (*WatchHandle, error) {
	c.mu.Lock()
	if c.watches == nil {
		c.watches = make(map[uint64]*WatchHandle)
	}
	if !c.listening {
		c.net.Listen(c.self, c.handlePush)
		c.listening = true
	}
	c.watchSeq++
	h := &WatchHandle{
		c: c, pool: pool, object: object, id: c.watchSeq,
		events: make(chan NotifyEvent, 16),
	}
	c.watches[h.id] = h
	c.mu.Unlock()

	if _, err := c.doWatch(ctx, watchReq{
		Pool: pool, Object: object, Watcher: c.self, ID: h.id,
	}); err != nil {
		c.mu.Lock()
		delete(c.watches, h.id)
		c.mu.Unlock()
		return nil, err
	}
	return h, nil
}

// doWatch routes a watch registration to the object's primary.
func (c *Client) doWatch(ctx context.Context, r watchReq) (OpReply, error) {
	c.mu.Lock()
	m := c.osdMap
	c.mu.Unlock()
	_, acting, err := Locate(m, r.Pool, r.Object)
	if err != nil {
		if rerr := c.RefreshMap(ctx); rerr != nil {
			return OpReply{}, rerr
		}
		c.mu.Lock()
		m = c.osdMap
		c.mu.Unlock()
		_, acting, err = Locate(m, r.Pool, r.Object)
		if err != nil {
			return OpReply{}, err
		}
	}
	resp, err := c.net.Call(ctx, c.self, OSDAddr(acting[0]), r)
	if err != nil {
		return OpReply{}, err
	}
	rep, ok := resp.(OpReply)
	if !ok {
		return OpReply{}, fmt.Errorf("rados: unexpected watch reply %T", resp)
	}
	return rep, ErrFor(rep.Result, rep.Detail)
}

// Notify sends payload to every watcher of the object, returning the
// number that acknowledged.
func (c *Client) Notify(ctx context.Context, pool, object string, payload []byte) (int, error) {
	c.mu.Lock()
	m := c.osdMap
	c.mu.Unlock()
	_, acting, err := Locate(m, pool, object)
	if err != nil {
		return 0, err
	}
	resp, err := c.net.Call(ctx, c.self, OSDAddr(acting[0]), notifyReq{
		Pool: pool, Object: object, Payload: payload,
	})
	if err != nil {
		return 0, err
	}
	return resp.(notifyResp).Acked, nil
}

// handlePush receives notification pushes on the client endpoint.
func (c *Client) handlePush(_ context.Context, _ wire.Addr, req any) (any, error) {
	p, ok := req.(notifyPush)
	if !ok {
		return nil, nil
	}
	c.mu.Lock()
	h := c.watches[p.ID]
	c.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("rados: no such watch %d", p.ID)
	}
	select {
	case h.events <- p.Event:
	default:
		// Slow consumer: drop rather than block the OSD's notify.
	}
	return true, nil
}
