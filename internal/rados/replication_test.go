package rados

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mon"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// clusterOpts parameterizes bootClusterOpts beyond what bootCluster
// fixes: fabric shaping, replication mode, and gossip cadence (the
// message-complexity tests need a quiet fabric).
type clusterOpts struct {
	osds     int
	replicas int
	netOpts  []wire.Option
	osd      OSDConfig // template; ID/Mons filled per daemon
}

func bootClusterOpts(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	net := wire.NewNetwork(opts.netOpts...)
	tc := &testCluster{net: net}

	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	if err := m.Lead(context.Background()); err != nil {
		t.Fatal(err)
	}
	tc.mons = append(tc.mons, m)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 8, opts.replicas); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < opts.osds; i++ {
		cfg := opts.osd
		cfg.ID = i
		cfg.Mons = []int{0}
		if cfg.GossipInterval == 0 {
			cfg.GossipInterval = 20 * time.Millisecond
		}
		osd := NewOSD(net, cfg)
		if err := osd.Start(ctx); err != nil {
			t.Fatal(err)
		}
		tc.osds = append(tc.osds, osd)
	}
	tc.client = NewClient(net, "client.0", []int{0})
	if err := tc.client.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, o := range tc.osds {
			o.Stop()
		}
		m.Stop()
	})
	return tc
}

// samePGName finds an object name in the same placement group as base
// (pool "data" has PGNum 8 in these tests).
func samePGName(base, prefix string, pgnum int) string {
	want := PGForObject(base, pgnum)
	for i := 0; ; i++ {
		s := fmt.Sprintf("%s-%d", prefix, i)
		if PGForObject(s, pgnum) == want {
			return s
		}
	}
}

// TestReplicatedWriteMessageComplexity pins down the message cost of a
// replicas=3 mutation on the pipelined path: exactly 1 client→primary
// call plus 2 primary→replica forwards, and the forwards are in flight
// concurrently (the per-endpoint high-water mark reaches 2).
func TestReplicatedWriteMessageComplexity(t *testing.T) {
	tc := bootClusterOpts(t, clusterOpts{
		osds: 3, replicas: 3,
		osd: OSDConfig{GossipInterval: time.Hour}, // quiet fabric: only op traffic
	})
	ctx := ctxT(t, 10*time.Second)

	// Warm-up settles the client's map epoch so the measured write needs
	// no EMapStale resync round-trips.
	if err := tc.client.WriteFull(ctx, "data", "counted", []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	m := tc.client.CachedMap()
	_, acting, err := Locate(m, "data", "counted")
	if err != nil {
		t.Fatal(err)
	}
	if len(acting) != 3 {
		t.Fatalf("acting set = %v, want 3 OSDs", acting)
	}
	primary := OSDAddr(acting[0])

	// Give the fabric real latency so the two replica forwards overlap
	// in flight (instant delivery would let one finish before the other
	// starts and hide the concurrency from the gauge).
	tc.net.SetLatency(time.Millisecond, 0)
	before := tc.net.Stats()
	if err := tc.client.WriteFull(ctx, "data", "counted", []byte("measured")); err != nil {
		t.Fatal(err)
	}
	after := tc.net.Stats()

	if got := after.Outbound["client.0"].Calls - before.Outbound["client.0"].Calls; got != 1 {
		t.Errorf("client calls = %d, want exactly 1", got)
	}
	if got := after.Outbound[primary].Calls - before.Outbound[primary].Calls; got != 2 {
		t.Errorf("primary replica forwards = %d, want exactly 2", got)
	}
	if got := after.Outbound[primary].MaxInflight; got < 2 {
		t.Errorf("primary outbound MaxInflight = %d, want >= 2 (parallel fan-out)", got)
	}
}

// TestFanOutLatencyOneRTT shapes the fabric at 1ms one-way and shows
// the replication leg costs ~1 RTT, not the serial path's 2: a
// pipelined replicas=3 write completes in ~4ms (client RTT + one
// parallel fan-out RTT) where the serial baseline needs ~6ms (client
// RTT + two sequential replica RTTs).
func TestFanOutLatencyOneRTT(t *testing.T) {
	measure := func(mode ReplicationMode) time.Duration {
		tc := bootClusterOpts(t, clusterOpts{
			osds: 3, replicas: 3,
			osd: OSDConfig{GossipInterval: time.Hour, Replication: mode},
		})
		ctx := ctxT(t, 30*time.Second)
		if err := tc.client.WriteFull(ctx, "data", "timed", []byte("warmup")); err != nil {
			t.Fatal(err)
		}
		tc.net.SetLatency(time.Millisecond, 0)
		const rounds = 5
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := tc.client.WriteFull(ctx, "data", "timed", []byte("payload")); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / rounds
	}

	pipelined := measure(ReplicatePipelined)
	serial := measure(ReplicateSerial)
	t.Logf("avg write latency at 1ms fabric: pipelined=%v serial=%v", pipelined, serial)
	if pipelined >= 5200*time.Microsecond {
		t.Errorf("pipelined write took %v, want < 5.2ms (~2 RTT total)", pipelined)
	}
	if serial-pipelined < 800*time.Microsecond {
		t.Errorf("fan-out saved only %v over serial, want ~1 full RTT (2ms)", serial-pipelined)
	}
}

// TestPerObjectConcurrency holds one object's slot lock (a stand-in for
// a slow write or class call on it) and shows operations on a sibling
// object in the same PG proceed unimpeded — the property the PG-wide
// lock could not give.
func TestPerObjectConcurrency(t *testing.T) {
	tc := bootClusterOpts(t, clusterOpts{osds: 3, replicas: 3, osd: OSDConfig{GossipInterval: time.Hour}})
	ctx := ctxT(t, 15*time.Second)

	m := tc.client.CachedMap()
	pgnum := m.Pools["data"].PGNum
	blocked := "blocked"
	sibling := samePGName(blocked, "free", pgnum)
	for _, name := range []string{blocked, sibling} {
		if err := tc.client.WriteFull(ctx, "data", name, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	_, acting, err := Locate(m, "data", blocked)
	if err != nil {
		t.Fatal(err)
	}
	primary := tc.osds[acting[0]]
	pgid := PGID{Pool: "data", PG: PGForObject(blocked, pgnum)}
	e := primary.getPG(pgid).entry(blocked)

	e.mu.Lock()
	writeDone := make(chan error, 1)
	go func() {
		wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		writeDone <- tc.client.WriteFull(wctx, "data", blocked, []byte("stalled"))
	}()

	// While the write on "blocked" is stuck behind its object lock, a
	// read of the sibling in the same PG must complete promptly.
	rctx, rcancel := context.WithTimeout(ctx, 2*time.Second)
	got, err := tc.client.Read(rctx, "data", sibling)
	rcancel()
	if err != nil {
		e.mu.Unlock()
		t.Fatalf("sibling read blocked behind another object's lock: %v", err)
	}
	if string(got) != "seed" {
		e.mu.Unlock()
		t.Fatalf("sibling read = %q", got)
	}
	select {
	case err := <-writeDone:
		e.mu.Unlock()
		t.Fatalf("write to locked object completed while lock held (err=%v)", err)
	default:
	}
	e.mu.Unlock()
	if err := <-writeDone; err != nil {
		t.Fatalf("write after release: %v", err)
	}
}

// TestReplicaConvergenceConcurrentWriters races writers against one hot
// object and sibling objects in the same PG over a jittery fabric (so
// parallel fan-outs genuinely cross), then asserts every replica holds
// byte-identical state in the primary's per-object version order and
// that a scrub round finds nothing to repair.
func TestReplicaConvergenceConcurrentWriters(t *testing.T) {
	tc := bootClusterOpts(t, clusterOpts{
		osds: 3, replicas: 3,
		netOpts: []wire.Option{wire.WithLatency(200*time.Microsecond, 300*time.Microsecond)},
		osd:     OSDConfig{GossipInterval: time.Hour},
	})
	ctx := ctxT(t, 60*time.Second)

	m := tc.client.CachedMap()
	pgnum := m.Pools["data"].PGNum
	hot := "hot"
	siblings := []string{
		samePGName(hot, "sib-a", pgnum),
		samePGName(hot, "sib-b", pgnum),
	}

	const writers, opsPerWriter = 4, 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers+len(siblings))
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewClient(tc.net, wire.Addr(fmt.Sprintf("client.w%d", w)), []int{0})
			if err := cl.RefreshMap(ctx); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < opsPerWriter; i++ {
				if err := cl.Append(ctx, "data", hot, []byte(fmt.Sprintf("[w%d:%d]", w, i))); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for si, name := range siblings {
		si, name := si, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewClient(tc.net, wire.Addr(fmt.Sprintf("client.s%d", si)), []int{0})
			if err := cl.RefreshMap(ctx); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < opsPerWriter; i++ {
				if err := cl.WriteFull(ctx, "data", name, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Acks are synchronous, so once every client op returned the
	// replicas have applied everything. Compare them to the primary.
	for _, name := range append([]string{hot}, siblings...) {
		_, acting, err := Locate(m, "data", name)
		if err != nil {
			t.Fatal(err)
		}
		pgid := PGID{Pool: "data", PG: PGForObject(name, pgnum)}
		read := func(osd *OSD) (string, uint64) {
			e := osd.getPG(pgid).entry(name)
			e.mu.Lock()
			defer e.mu.Unlock()
			if e.obj == nil {
				return "<tombstone>", e.ver
			}
			return string(e.obj.Data), e.ver
		}
		wantData, wantVer := read(tc.osds[acting[0]])
		if name == hot && wantVer != writers*opsPerWriter {
			t.Errorf("%s: primary version = %d, want %d", name, wantVer, writers*opsPerWriter)
		}
		for _, rep := range acting[1:] {
			gotData, gotVer := read(tc.osds[rep])
			if gotVer != wantVer {
				t.Errorf("%s: osd.%d version = %d, primary has %d", name, rep, gotVer, wantVer)
			}
			if gotData != wantData {
				t.Errorf("%s: osd.%d data diverged from primary (len %d vs %d)", name, rep, len(gotData), len(wantData))
			}
		}
	}

	// A scrub round across the cluster must find nothing to repair.
	for _, osd := range tc.osds {
		osd.scrubOnce()
	}
	for _, osd := range tc.osds {
		if n := osd.ScrubRepairs(); n != 0 {
			t.Errorf("osd repaired %d divergent replicas, want 0", n)
		}
	}
}

// TestClientTypedRetryError exhausts the client's retry budget against
// an unreachable primary and checks the typed sentinel surfaces.
func TestClientTypedRetryError(t *testing.T) {
	tc := bootClusterOpts(t, clusterOpts{osds: 1, replicas: 1, osd: OSDConfig{GossipInterval: time.Hour}})
	ctx := ctxT(t, 15*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Kill the only OSD; with no beacons the map never changes, so every
	// retry re-targets the dead primary until the budget runs out.
	tc.osds[0].Stop()
	err := tc.client.WriteFull(ctx, "data", "obj", []byte("y"))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}
