package rados

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/mon"
	"repro/internal/paxos"
	"repro/internal/wire"
)

func TestMutationCodecRoundTrip(t *testing.T) {
	snap := NewObject("snap-obj")
	snap.Data = []byte("snapshot bytes")
	snap.Omap["k1"] = []byte("v1")
	snap.Omap["k2"] = nil
	snap.Xattrs["dedup.refs"] = []byte("7:1:m")
	snap.Version = 42

	cases := []Mutation{
		{Kind: RecCreate, Pool: "data", PG: 3, Object: "a", Version: 1},
		{Kind: RecData, Pool: "data", PG: 0, Object: "b", Version: 9, Data: []byte("payload")},
		{Kind: RecData, Pool: "data", PG: 0, Object: "empty", Version: 2},
		{Kind: RecRemove, Pool: "p", PG: 7, Object: "gone", Version: 11},
		{Kind: RecPurge, Pool: "p", PG: 1, Object: "resplit", Version: 4},
		{Kind: RecOmapSet, Pool: "data", PG: 2, Object: "o", Version: 5,
			KV: map[string][]byte{"x": []byte("1"), "y": nil}},
		{Kind: RecOmapDel, Pool: "data", PG: 2, Object: "o", Version: 6, Keys: []string{"x", "y"}},
		{Kind: RecXattrSet, Pool: "data", PG: 2, Object: "o", Version: 7,
			Key: "attr", Data: []byte("val")},
		{Kind: RecSnapshot, Pool: "data", PG: 4, Object: "snap-obj", Version: 42,
			Force: true, Obj: snap},
		{Kind: RecVerPin, Pool: "data", PG: 5, Object: "pin", Version: 13},
	}
	for _, want := range cases {
		enc := encodeMutation(nil, want)
		got, err := decodeMutation(enc)
		if err != nil {
			t.Fatalf("%v decode: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Pool != want.Pool || got.PG != want.PG ||
			got.Object != want.Object || got.Version != want.Version || got.Force != want.Force {
			t.Fatalf("%v header mismatch: got %+v want %+v", want.Kind, got, want)
		}
		if !bytes.Equal(got.Data, want.Data) || got.Key != want.Key {
			t.Fatalf("%v payload mismatch: got %+v want %+v", want.Kind, got, want)
		}
		if len(got.Keys) != len(want.Keys) || (len(want.Keys) > 0 && !reflect.DeepEqual(got.Keys, want.Keys)) {
			t.Fatalf("%v keys mismatch: got %v want %v", want.Kind, got.Keys, want.Keys)
		}
		if len(want.KV) > 0 && !reflect.DeepEqual(got.KV, map[string][]byte{"x": []byte("1"), "y": {}}) &&
			!reflect.DeepEqual(got.KV, want.KV) {
			t.Fatalf("%v kv mismatch: got %v want %v", want.Kind, got.KV, want.KV)
		}
		if want.Kind == RecSnapshot {
			if got.Obj == nil || got.Obj.Name != "snap-obj" ||
				!bytes.Equal(got.Obj.Data, snap.Data) ||
				!bytes.Equal(got.Obj.Omap["k1"], []byte("v1")) ||
				!bytes.Equal(got.Obj.Xattrs["dedup.refs"], []byte("7:1:m")) ||
				got.Obj.Version != 42 {
				t.Fatalf("snapshot object mismatch: %+v", got.Obj)
			}
		}
	}

	// Truncated records must fail to decode, never partially apply.
	full := encodeMutation(nil, cases[1])
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeMutation(full[:cut]); err == nil {
			t.Fatalf("decode of %d/%d byte prefix succeeded", cut, len(full))
		}
	}
	if _, err := decodeMutation([]byte{255, 0, 0}); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestWALBackendCrashDropsUncommitted(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	be.Record(Mutation{Kind: RecData, Pool: "data", PG: 0, Object: "durable", Version: 1, Data: []byte("x")})
	if err := be.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	be.Record(Mutation{Kind: RecData, Pool: "data", PG: 0, Object: "lost", Version: 1, Data: []byte("y")})
	be.Abandon() // crash before commit

	re, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close() //nolint:errcheck
	var seen []string
	stats, err := re.Replay(func(m Mutation) { seen = append(seen, m.Object) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.TornBytes == 0 {
		t.Fatal("crash left no torn tail")
	}
	if stats.Skipped != 0 {
		t.Fatalf("skipped %d records", stats.Skipped)
	}
	if len(seen) != 1 || seen[0] != "durable" {
		t.Fatalf("replayed %v, want only the committed mutation", seen)
	}
}

func TestWALBackendCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 5; i++ {
		be.Record(Mutation{Kind: RecData, Pool: "data", PG: 0, Object: "obj",
			Version: uint64(i), Data: []byte(fmt.Sprintf("v%d", i))})
	}
	if err := be.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	err = be.Checkpoint(func() []Mutation {
		return []Mutation{{Kind: RecData, Pool: "data", PG: 0, Object: "obj",
			Version: 5, Data: []byte("v5")}}
	})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	be.Record(Mutation{Kind: RecData, Pool: "data", PG: 0, Object: "obj",
		Version: 6, Data: []byte("v6")})
	if err := be.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close() //nolint:errcheck
	var vers []uint64
	stats, err := re.Replay(func(m Mutation) { vers = append(vers, m.Version) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.CheckpointRecords != 1 {
		t.Fatalf("checkpoint records = %d, want 1", stats.CheckpointRecords)
	}
	if stats.Records != 1 || vers[len(vers)-1] != 6 {
		t.Fatalf("journal replay = %d records %v, want just v6", stats.Records, vers)
	}
}

// walCluster boots one monitor and one single-replica OSD whose state
// persists in dir — the smallest cluster where recovery must come from
// the WAL alone (no peer holds a second copy to backfill from).
func walCluster(t *testing.T, dir string) (*wire.Network, *mon.Client, *OSD, *Client) {
	t.Helper()
	net := wire.NewNetwork()
	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	t.Cleanup(m.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Lead(ctx); err != nil {
		t.Fatalf("lead: %v", err)
	}
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 8, 1); err != nil {
		t.Fatalf("create pool: %v", err)
	}
	osd := startWALOSD(t, net, dir)
	return net, boot, osd, NewClient(net, "client.app", []int{0})
}

func startWALOSD(t *testing.T, net *wire.Network, dir string) *OSD {
	t.Helper()
	be, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("open backend: %v", err)
	}
	o := NewOSD(net, OSDConfig{ID: 0, Mons: []int{0}, GossipInterval: 20 * time.Millisecond, Backend: be})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := o.Start(ctx); err != nil {
		t.Fatalf("start wal osd: %v", err)
	}
	t.Cleanup(o.Stop)
	return o
}

// A hard-killed WAL-backed OSD must recover every acked write — flat
// data, omap, xattrs, and a dedup manifest with its blocks — purely
// from its log: with replicas=1 there is no peer to backfill from.
func TestOSDWALCrashRecoversAckedWrites(t *testing.T) {
	dir := t.TempDir()
	net, _, osd, rc := walCluster(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := rc.WriteFull(ctx, "data", "flat", []byte("flat-bytes")); err != nil {
		t.Fatalf("write flat: %v", err)
	}
	if err := rc.OmapSet(ctx, "data", "meta", map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatalf("omap set: %v", err)
	}
	if err := rc.SetXattr(ctx, "data", "meta", "owner", []byte("alice")); err != nil {
		t.Fatalf("setxattr: %v", err)
	}

	// Checkpoint mid-history: recovery must stitch snapshot + journal.
	if err := osd.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	doc := bytes.Repeat([]byte("malacology shares subsystems. "), 512)
	if _, err := rc.WriteDeduped(ctx, "data", "doc", doc, nil); err != nil {
		t.Fatalf("write deduped: %v", err)
	}
	if err := rc.WriteFull(ctx, "data", "late", []byte("post-checkpoint")); err != nil {
		t.Fatalf("write late: %v", err)
	}

	osd.Crash()

	// Recover: a fresh daemon over the same WAL directory.
	re := startWALOSD(t, net, dir)
	rep := re.ReplayReport()
	if rep.Records == 0 && rep.CheckpointRecords == 0 {
		t.Fatalf("replay restored nothing: %+v", rep)
	}
	if rep.TornBytes == 0 {
		t.Fatalf("crash left no torn tail: %+v", rep)
	}
	if rep.Skipped != 0 {
		t.Fatalf("replay skipped %d records", rep.Skipped)
	}
	if rep.ManifestsRequeued == 0 || rep.RefDeltasQueued == 0 {
		t.Fatalf("reconciliation re-derived no manifest refs: %+v", rep)
	}
	if re.QueuedRefDeltas() == 0 {
		t.Fatal("reconciliation left the ref-delta queue empty")
	}

	if got, err := rc.Read(ctx, "data", "flat"); err != nil || !bytes.Equal(got, []byte("flat-bytes")) {
		t.Fatalf("read flat after crash: %q %v", got, err)
	}
	if kv, err := rc.OmapGet(ctx, "data", "meta", "k"); err != nil || !bytes.Equal(kv["k"], []byte("v")) {
		t.Fatalf("omap after crash: %v %v", kv, err)
	}
	if v, err := rc.GetXattr(ctx, "data", "meta", "owner"); err != nil || !bytes.Equal(v, []byte("alice")) {
		t.Fatalf("xattr after crash: %q %v", v, err)
	}
	if got, err := rc.ReadDeduped(ctx, "data", "doc"); err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("deduped read after crash: %d bytes, %v", len(got), err)
	}
	if got, err := rc.Read(ctx, "data", "late"); err != nil || !bytes.Equal(got, []byte("post-checkpoint")) {
		t.Fatalf("read late after crash: %q %v", got, err)
	}

	// The dedup bookkeeping converges: deliver the re-derived deltas,
	// then the audit must find no dangling or leaked references.
	re.SweepBlocks(time.Hour)
	for i := 0; i < 50; i++ {
		if re.RefScrub("data") == 0 {
			break
		}
		re.SweepBlocks(time.Hour)
	}
	audit := AuditDedup([]*OSD{re}, "data")
	if len(audit.Dangling) != 0 || len(audit.Leaked) != 0 {
		t.Fatalf("audit after recovery: dangling=%v leaked=%v", audit.Dangling, audit.Leaked)
	}
}

// The broken-replay knob (SkipReconcileOnReplay) must actually skip
// reconciliation — the chaos fixture relies on the resulting dangling
// refs being caught by its checkers.
func TestOSDWALSkipReconcileLeavesQueueEmpty(t *testing.T) {
	dir := t.TempDir()
	net, _, osd, rc := walCluster(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	doc := bytes.Repeat([]byte("dedup me again and again. "), 512)
	if _, err := rc.WriteDeduped(ctx, "data", "doc", doc, nil); err != nil {
		t.Fatalf("write deduped: %v", err)
	}
	osd.Crash()

	be, err := OpenWALBackend(dir, WALBackendOptions{})
	if err != nil {
		t.Fatalf("open backend: %v", err)
	}
	re := NewOSD(net, OSDConfig{ID: 0, Mons: []int{0}, GossipInterval: 20 * time.Millisecond,
		Backend: be, SkipReconcileOnReplay: true})
	if err := re.Start(ctx); err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(re.Stop)
	rep := re.ReplayReport()
	if rep.ManifestsRequeued != 0 || rep.RefDeltasQueued != 0 {
		t.Fatalf("skip-reconcile still requeued: %+v", rep)
	}
	if re.QueuedRefDeltas() != 0 {
		t.Fatalf("skip-reconcile left %d queued deltas", re.QueuedRefDeltas())
	}
}

// A graceful Stop→Start keeps serving from memory without a second
// replay; the report stays that of the original recovery.
func TestOSDWALGracefulRestartSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	_, _, osd, rc := walCluster(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := rc.WriteFull(ctx, "data", "obj", []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	osd.Stop()
	if err := osd.Start(ctx); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if rep := osd.ReplayReport(); rep.Records != 0 || rep.CheckpointRecords != 0 {
		t.Fatalf("graceful restart replayed: %+v", rep)
	}
	if got, err := rc.Read(ctx, "data", "obj"); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("read after graceful restart: %q %v", got, err)
	}
}
