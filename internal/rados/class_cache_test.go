package rados

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

func execClass(t *testing.T, rt *classRuntime, def types.ClassDef, method, input string) (string, ResultCode) {
	t.Helper()
	obj := NewObject("t.obj")
	ctx := &ClassCtx{Obj: obj, Input: []byte(input)}
	out, rc := rt.callScript(def, method, ctx)
	return string(out), rc
}

// TestCompiledClassCacheStaleSource is the stale-code regression: after
// a class is re-registered under the same name with different source,
// calls must run the new code, never a cached compilation of the old.
func TestCompiledClassCacheStaleSource(t *testing.T) {
	for _, mode := range []ClassExecMode{ClassExecCompiled, ClassExecLegacy} {
		t.Run(fmt.Sprintf("mode_%d", mode), func(t *testing.T) {
			rt := newClassRuntime(mode)
			v1 := types.ClassDef{Name: "echo", Version: 1, Script: `function get(cls) return "old" end`}
			v2 := types.ClassDef{Name: "echo", Version: 2, Script: `function get(cls) return "new" end`}

			if out, rc := execClass(t, rt, v1, "get", ""); rc != OK || out != "old" {
				t.Fatalf("v1: got %q rc=%v", out, rc)
			}
			// Warm the cache hard, then re-register.
			for i := 0; i < 10; i++ {
				execClass(t, rt, v1, "get", "")
			}
			if out, rc := execClass(t, rt, v2, "get", ""); rc != OK || out != "new" {
				t.Fatalf("after re-register: got %q rc=%v (stale compilation served)", out, rc)
			}
			// The old def still resolves to its own code (hash-keyed).
			if out, rc := execClass(t, rt, v1, "get", ""); rc != OK || out != "old" {
				t.Fatalf("v1 after v2: got %q rc=%v", out, rc)
			}
		})
	}
}

// TestCompiledClassWarmPathMutations drives a mutating method many
// times through the pooled VM to prove the rebound ctx table targets
// the right object every call.
func TestCompiledClassWarmPathMutations(t *testing.T) {
	rt := newClassRuntime(ClassExecCompiled)
	def := types.ClassDef{Name: "kv", Version: 1, Script: `
		function put(cls)
			cls.omap_set(cls.input, cls.input .. "-v")
			return cls.input
		end
		function get(cls)
			return cls.omap_get(cls.input)
		end
	`}
	objs := make([]*Object, 4)
	for i := range objs {
		objs[i] = NewObject(fmt.Sprintf("o%d", i))
	}
	for round := 0; round < 8; round++ {
		for i, obj := range objs {
			key := fmt.Sprintf("k%d-%d", i, round)
			ctx := &ClassCtx{Obj: obj, Input: []byte(key)}
			if out, rc := rt.callScript(def, "put", ctx); rc != OK || string(out) != key {
				t.Fatalf("put %s: %q rc=%v", key, out, rc)
			}
		}
	}
	for i, obj := range objs {
		key := fmt.Sprintf("k%d-7", i)
		ctx := &ClassCtx{Obj: obj, Input: []byte(key)}
		out, rc := rt.callScript(def, "get", ctx)
		if rc != OK || string(out) != key+"-v" {
			t.Fatalf("get %s from o%d: %q rc=%v", key, i, out, rc)
		}
		if len(obj.Omap) != 8 {
			t.Fatalf("o%d has %d omap keys, want 8", i, len(obj.Omap))
		}
	}
}

// TestCompiledClassErrorCodes: error("ENOENT: ...") style codes survive
// the VM engine, including line-attributed runtime errors → EIO.
func TestCompiledClassErrorCodes(t *testing.T) {
	rt := newClassRuntime(ClassExecCompiled)
	def := types.ClassDef{Name: "err", Version: 1, Script: `
		function missing(cls) error("ENOENT: no such entry") end
		function boom(cls) return nil + 1 end
	`}
	if _, rc := execClass(t, rt, def, "missing", ""); rc != ENOENT {
		t.Fatalf("want ENOENT, got %v", rc)
	}
	if _, rc := execClass(t, rt, def, "boom", ""); rc != EIO {
		t.Fatalf("want EIO, got %v", rc)
	}
	if out, rc := execClass(t, rt, def, "absent", ""); rc != EINVAL {
		t.Fatalf("want EINVAL for missing method, got %v (%s)", rc, out)
	}
	bad := types.ClassDef{Name: "syntax", Version: 1, Script: "function ("}
	if _, rc := execClass(t, rt, bad, "x", ""); rc != EINVAL {
		t.Fatalf("want EINVAL for syntax error, got %v", rc)
	}
}

// TestCompiledClassCacheBounded: the FIFO cap holds.
func TestCompiledClassCacheBounded(t *testing.T) {
	rt := newClassRuntime(ClassExecCompiled)
	for i := 0; i < maxCompiledClasses+20; i++ {
		def := types.ClassDef{
			Name: "gen", Version: uint64(i),
			Script: fmt.Sprintf("function get(cls) return %d end", i),
		}
		if out, rc := execClass(t, rt, def, "get", ""); rc != OK || out != fmt.Sprint(i) {
			t.Fatalf("gen %d: %q rc=%v", i, out, rc)
		}
	}
	rt.mu.Lock()
	n, o := len(rt.compiled), len(rt.hashOrder)
	rt.mu.Unlock()
	if n != maxCompiledClasses || o != maxCompiledClasses {
		t.Fatalf("cache size %d/%d, want %d", n, o, maxCompiledClasses)
	}
}
