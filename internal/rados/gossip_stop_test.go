package rados

import (
	"testing"
	"time"
)

// TestStopQuiescesGossip is the regression test for the gossip fan-out
// lifecycle: the per-peer goroutines gossipOnce spawns are tracked by
// the daemon's WaitGroup and carry a stop-cancelled context, so once
// Stop() returns the OSD sends nothing more into the fabric. Before the
// fix they were untracked and bounded only by their own
// Background-rooted timeout, so a stopped OSD could keep calling peers
// for several gossip intervals.
func TestStopQuiescesGossip(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	target := tc.osds[0]

	// Let a few gossip rounds run so the fan-out path is active.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if tc.net.Stats().Outbound[target.Addr()].Calls > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tc.net.Stats().Outbound[target.Addr()].Calls == 0 {
		t.Fatal("no gossip traffic observed before Stop")
	}

	target.Stop()
	after := tc.net.Stats().Outbound[target.Addr()].Calls

	// Wait well past several gossip intervals (20 ms in bootCluster) and
	// past the in-flight call timeout window; a leaked fan-out goroutine
	// would land more calls here.
	time.Sleep(8 * 20 * time.Millisecond)
	if got := tc.net.Stats().Outbound[target.Addr()].Calls; got != after {
		t.Fatalf("stopped OSD kept calling the fabric: %d calls at Stop, %d after", after, got)
	}
}
