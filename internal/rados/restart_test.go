package rados

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/mon"
	"repro/internal/paxos"
	"repro/internal/wire"
)

// restartCluster boots one monitor and n OSDs on a fresh fabric.
func restartCluster(t *testing.T, n, replicas int) (*wire.Network, *mon.Monitor, []*OSD, *Client) {
	t.Helper()
	net := wire.NewNetwork()
	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	t.Cleanup(m.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Lead(ctx); err != nil {
		t.Fatalf("lead: %v", err)
	}
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 8, replicas); err != nil {
		t.Fatalf("create pool: %v", err)
	}
	var osds []*OSD
	for i := 0; i < n; i++ {
		o := NewOSD(net, OSDConfig{ID: i, Mons: []int{0}, GossipInterval: 20 * time.Millisecond})
		if err := o.Start(ctx); err != nil {
			t.Fatalf("start osd.%d: %v", i, err)
		}
		osds = append(osds, o)
		t.Cleanup(o.Stop)
	}
	return net, m, osds, NewClient(net, "client.app", []int{0})
}

// An OSD stopped and restarted must rejoin the map, catch up to the
// current epoch, and be backfilled the writes it missed while down.
func TestOSDRestartRejoinsAndBackfills(t *testing.T) {
	_, _, osds, rc := restartCluster(t, 3, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	monc := rc.Mon()

	for i := 0; i < 8; i++ {
		obj := fmt.Sprintf("pre-%d", i)
		if err := rc.WriteFull(ctx, "data", obj, []byte(obj)); err != nil {
			t.Fatalf("pre-crash write %s: %v", obj, err)
		}
	}

	victim := osds[2]
	victim.Stop()
	if err := monc.MarkOSDDown(ctx, 2); err != nil {
		t.Fatalf("mark down: %v", err)
	}
	// Writes while the victim is down land on the survivors only.
	for i := 0; i < 8; i++ {
		obj := fmt.Sprintf("mid-%d", i)
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := rc.WriteFull(ctx, "data", obj, []byte(obj)); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("degraded write %s: %v", obj, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	if err := victim.Start(ctx); err != nil {
		t.Fatalf("restart: %v", err)
	}

	// The restarted daemon must converge to the monitor's epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := monc.GetOSDMap(ctx)
		if err == nil && victim.Epoch() >= m.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim epoch %d never reached monitor epoch", victim.Epoch())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...and scrub must find nothing left to repair once backfill and
	// repair pushes have settled: every replica holds every object.
	deadline = time.Now().Add(10 * time.Second)
	for {
		repairs := 0
		for _, o := range osds {
			repairs += o.ScrubNow()
		}
		if repairs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged; last pass repaired %d", repairs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Reads (including from a map that may route to the restarted OSD as
	// primary) must return every acked write.
	for i := 0; i < 8; i++ {
		for _, prefix := range []string{"pre", "mid"} {
			obj := fmt.Sprintf("%s-%d", prefix, i)
			got, err := rc.Read(ctx, "data", obj)
			if err != nil {
				t.Fatalf("read %s after restart: %v", obj, err)
			}
			if !bytes.Equal(got, []byte(obj)) {
				t.Fatalf("read %s = %q, want %q", obj, got, obj)
			}
		}
	}

	// Double-start of a running daemon must be rejected, and a second
	// stop/start cycle must work as well as the first.
	if err := victim.Start(ctx); err == nil {
		t.Fatal("second Start of a running OSD should fail")
	}
	victim.Stop()
	victim.Stop() // idempotent
	if err := victim.Start(ctx); err != nil {
		t.Fatalf("second restart: %v", err)
	}
}
