package rados

import (
	"context"
	"time"

	"repro/internal/types"
)

// handleOp services one object operation. The epoch discipline follows
// Ceph: a request from a client with an older map is rejected ESTALE
// (forcing a resync before I/O continues — the mechanism ZLog's seal
// protocol leans on); a request carrying a newer epoch makes this daemon
// pull the latest map before proceeding.
func (o *OSD) handleOp(ctx context.Context, req OpRequest) OpReply {
	if req.Epoch > o.Epoch() {
		if m, err := o.monc.GetOSDMap(ctx); err == nil {
			o.updateMap(m)
		}
	}
	o.mu.Lock()
	m := o.osdMap
	o.mu.Unlock()

	// A call against a class this daemon does not know may be racing a
	// just-committed install; pull the latest map once before failing.
	if req.Op == OpCall && !o.rt.isNative(req.Class) {
		if _, ok := m.Classes[req.Class]; !ok {
			if fresh, err := o.monc.GetOSDMap(ctx); err == nil {
				o.updateMap(fresh)
				o.mu.Lock()
				m = o.osdMap
				o.mu.Unlock()
			}
		}
	}

	if req.Epoch < m.Epoch {
		return OpReply{Result: EMapStale, Detail: "client map epoch out of date", Epoch: m.Epoch}
	}

	pi, ok := m.Pools[req.Pool]
	if !ok {
		return OpReply{Result: ENOENT, Detail: "no such pool", Epoch: m.Epoch}
	}
	pgnum := PGForObject(req.Object, pi.PGNum)
	acting := OSDsForPG(m, req.Pool, pgnum, pi.Replicas)
	if len(acting) == 0 {
		return OpReply{Result: EIO, Detail: "no OSDs up", Epoch: m.Epoch}
	}
	if !req.Replica && acting[0] != o.cfg.ID {
		return OpReply{Result: EMapStale, Detail: "not primary for object", Epoch: m.Epoch}
	}

	p := o.getPG(PGID{Pool: req.Pool, PG: pgnum})
	p.mu.Lock()
	defer p.mu.Unlock()
	reply, mutated := o.applyOp(p, req, m)
	reply.Epoch = m.Epoch

	// Primary-copy replication: after a successful local mutation, the
	// primary forwards the same op to the replicas and waits for their
	// acks. Replicas re-apply deterministically. The PG lock is held
	// through replication so replicas observe ops in primary order.
	if mutated && !req.Replica && reply.Result == OK {
		fwd := req
		fwd.Replica = true
		fwd.Epoch = m.Epoch
		for _, peer := range acting[1:] {
			rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			//lint:ignore lockblock the PG lock is held through replication BY DESIGN: replicas must observe ops in primary order, and replicas never call back into this PG
			_, err := o.net.Call(rctx, o.Addr(), OSDAddr(peer), fwd)
			cancel()
			if err != nil {
				// The replica is unreachable; durability is degraded until
				// the beacon timeout marks it down and backfill repairs.
				lctx, lcancel := context.WithTimeout(context.Background(), time.Second)
				//lint:ignore lockblock same primary-order replication window as the replica forward above
				o.monc.Log(lctx, "warn", "replica write to "+string(OSDAddr(peer))+" failed: "+err.Error()) //nolint:errcheck
				lcancel()
			}
		}
	}
	return reply
}

// applyOp executes one op against the PG (held locked). Returns the
// reply and whether object state changed (drives replication).
func (o *OSD) applyOp(p *pg, req OpRequest, m *types.OSDMap) (OpReply, bool) {
	switch req.Op {
	case OpStat:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Size: int64(len(obj.Data)), Version: obj.Version}, false

	case OpRead:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Data: append([]byte(nil), obj.Data...), Version: obj.Version}, false

	case OpCreate:
		if p.get(req.Object, false) != nil {
			return OpReply{Result: EEXIST}, false
		}
		obj := p.get(req.Object, true)
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpWriteFull:
		obj := p.get(req.Object, true)
		obj.Data = append([]byte(nil), req.Data...)
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpAppend:
		obj := p.get(req.Object, true)
		obj.Data = append(obj.Data, req.Data...)
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpRemove:
		if p.get(req.Object, false) == nil {
			return OpReply{Result: ENOENT}, false
		}
		delete(p.objects, req.Object)
		return OpReply{Result: OK}, true

	case OpOmapGet:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		kv := make(map[string][]byte)
		for _, k := range req.Keys {
			if v, ok := obj.Omap[k]; ok {
				kv[k] = append([]byte(nil), v...)
			}
		}
		return OpReply{Result: OK, KV: kv, Version: obj.Version}, false

	case OpOmapSet:
		obj := p.get(req.Object, true)
		for k, v := range req.KV {
			obj.Omap[k] = append([]byte(nil), v...)
		}
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpOmapDel:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		for _, k := range req.Keys {
			delete(obj.Omap, k)
		}
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpOmapList:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Keys: obj.OmapKeysSorted(req.Key), Version: obj.Version}, false

	case OpGetXattr:
		obj := p.get(req.Object, false)
		if obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		v, ok := obj.Xattrs[req.Key]
		if !ok {
			return OpReply{Result: ENOENT, Detail: "no such xattr"}, false
		}
		return OpReply{Result: OK, Data: append([]byte(nil), v...), Version: obj.Version}, false

	case OpSetXattr:
		obj := p.get(req.Object, true)
		obj.Xattrs[req.Key] = append([]byte(nil), req.Data...)
		obj.Version++
		return OpReply{Result: OK, Version: obj.Version}, true

	case OpCall:
		return o.applyCall(p, req, m)
	}
	return OpReply{Result: EINVAL, Detail: "unknown op"}, false
}

// applyCall executes a class method transactionally. Native methods run
// on a clone that replaces the object only on success (they are rare
// and compiled-in). Script methods — the hot, user-supplied path — run
// directly on the live object under the PG lock with an undo log, so an
// abort rolls back in time proportional to the state touched rather
// than the object's size (ZLog stripe objects grow without bound).
func (o *OSD) applyCall(p *pg, req OpRequest, m *types.OSDMap) (OpReply, bool) {
	if o.rt.isNative(req.Class) {
		return o.applyNativeCall(p, req)
	}
	def, ok := m.Classes[req.Class]
	if !ok {
		return OpReply{Result: ENOENT, Detail: "no such class: " + req.Class}, false
	}

	existed := p.get(req.Object, false) != nil
	obj := p.get(req.Object, true)
	ctx := &ClassCtx{Obj: obj, Input: req.Input}
	out, rc := o.rt.callScript(def, req.Method, ctx)
	if rc != OK {
		ctx.rollback()
		if !existed {
			delete(p.objects, req.Object)
		}
		return OpReply{Result: rc, Detail: string(out), Data: out}, false
	}
	if ctx.mutated {
		obj.Version++
	} else if !existed {
		// A pure read on a nonexistent object leaves no trace.
		delete(p.objects, req.Object)
	}
	return OpReply{Result: OK, Data: out, Version: obj.Version}, ctx.mutated
}

// applyNativeCall runs a compiled-in method on a clone, swapping it in
// only when the method succeeds and actually changed state.
func (o *OSD) applyNativeCall(p *pg, req OpRequest) (OpReply, bool) {
	orig := p.get(req.Object, false)
	var work *Object
	var preDigest uint64
	existed := orig != nil
	if existed {
		work = orig.clone()
		preDigest = orig.digest()
	} else {
		work = NewObject(req.Object)
		preDigest = work.digest()
	}
	ctx := &ClassCtx{Obj: work, Input: req.Input}
	out, rc, found := o.rt.callNative(req.Class, req.Method, ctx)
	if !found {
		return OpReply{Result: ENOENT, Detail: "no such class: " + req.Class}, false
	}
	if rc != OK {
		// Abort: the clone is discarded; the stored object is untouched.
		// The payload still flows back (e.g. lock.acquire reports the
		// current holder alongside EEXIST).
		return OpReply{Result: rc, Detail: string(out), Data: out}, false
	}
	mutated := work.digest() != preDigest
	if mutated {
		work.Version++
		p.objects[req.Object] = work
	}
	return OpReply{Result: OK, Data: out, Version: work.Version}, mutated
}
