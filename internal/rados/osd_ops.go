package rados

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

// handleOp services one object operation. The epoch discipline follows
// Ceph: a request from a client with an older map is rejected ESTALE
// (forcing a resync before I/O continues — the mechanism ZLog's seal
// protocol leans on); a request carrying a newer epoch makes this daemon
// pull the latest map before proceeding.
func (o *OSD) handleOp(ctx context.Context, from wire.Addr, req OpRequest) OpReply {
	if req.Epoch > o.Epoch() {
		if m, err := o.monc.GetOSDMap(ctx); err == nil {
			o.updateMap(m)
		}
	}
	o.mu.Lock()
	m := o.osdMap
	o.mu.Unlock()

	// A call against a class this daemon does not know may be racing a
	// just-committed install; pull the latest map once before failing.
	if req.Op == OpCall && !o.rt.isNative(req.Class) {
		if _, ok := m.Classes[req.Class]; !ok {
			if fresh, err := o.monc.GetOSDMap(ctx); err == nil {
				o.updateMap(fresh)
				o.mu.Lock()
				m = o.osdMap
				o.mu.Unlock()
			}
		}
	}

	if req.Epoch < m.Epoch {
		return OpReply{Result: EMapStale, Detail: "client map epoch out of date", Epoch: m.Epoch}
	}

	pi, ok := m.Pools[req.Pool]
	if !ok {
		return OpReply{Result: ENOENT, Detail: "no such pool", Epoch: m.Epoch}
	}
	pgnum := PGForObject(req.Object, pi.PGNum)
	acting := OSDsForPG(m, req.Pool, pgnum, pi.Replicas)
	if len(acting) == 0 {
		return OpReply{Result: EIO, Detail: "no OSDs up", Epoch: m.Epoch}
	}
	if !req.Replica && acting[0] != o.cfg.ID {
		return OpReply{Result: EMapStale, Detail: "not primary for object", Epoch: m.Epoch}
	}

	// Duplicate-delivery check: a client resend of an operation whose ack
	// was lost must observe the recorded outcome, not re-apply it. Only
	// the epoch is refreshed — the rest of the reply is the original.
	if req.OpID != 0 && !req.Replica {
		if rep, ok := o.replayGet(from, req.OpID); ok {
			rep.Epoch = m.Epoch
			return rep
		}
	}

	// Batched block presence probe: req.Keys spans many objects (and so
	// many PGs of this primary), so it cannot ride the per-object path.
	// The single-name form (no Keys) falls through to applyOp like any
	// read.
	if req.Op == OpBlockStat && len(req.Keys) > 0 {
		return o.blockStatBatch(req, m)
	}

	p := o.getPG(PGID{Pool: req.Pool, PG: pgnum})
	if req.Replica {
		rep := o.applyReplicaOp(ctx, p, req, m)
		if rep.Result == OK {
			if err := o.commitDurable(); err != nil {
				return OpReply{Result: EIO, Detail: "wal commit: " + err.Error(), Epoch: m.Epoch}
			}
		}
		return rep
	}
	if o.cfg.Replication == ReplicateSerial {
		return o.doSerialOp(ctx, from, p, req, m, acting)
	}

	// Pipelined primary path: apply locally under the object's own lock,
	// version-stamp, journal, release the lock, then commit and
	// replicate. Nothing is held across the fsync or the replica
	// round-trips — per-object ordering travels in the version stamps
	// instead of being pinned by a lock.
	e := p.entry(req.Object)
	e.mu.Lock()
	prev := e.ver
	reply, mutated := o.applyOp(e, req, m)
	if mutated && reply.Result == OK {
		o.recordOp(p, e, req)
	}
	e.mu.Unlock()
	reply.Epoch = m.Epoch
	if mutated && reply.Result == OK {
		if err := o.commitDurable(); err != nil {
			return OpReply{Result: EIO, Detail: "wal commit: " + err.Error(), Epoch: m.Epoch}
		}
		if req.OpID != 0 {
			o.replayPut(from, req.OpID, reply)
		}
		o.replicate(ctx, req, acting[1:], m.Epoch, prev, reply.Version)
	}
	return reply
}

// blockStatBatch answers which of req.Keys exist on this daemon,
// touching each found block's reclaim clock so the caller's grace
// window opens from "you told me it exists", not from the block's last
// write. Names whose primary is not this daemon (the client grouped
// with a stale map) are simply not reported; the client rewrites them,
// and OpBlockWrite on an existing block is an ack.
func (o *OSD) blockStatBatch(req OpRequest, m *types.OSDMap) OpReply {
	pi, ok := m.Pools[req.Pool]
	if !ok {
		return OpReply{Result: ENOENT, Detail: "no such pool", Epoch: m.Epoch}
	}
	var present []string
	for _, name := range req.Keys {
		pgnum := PGForObject(name, pi.PGNum)
		acting := OSDsForPG(m, req.Pool, pgnum, pi.Replicas)
		if len(acting) == 0 || acting[0] != o.cfg.ID {
			continue
		}
		e := o.getPG(PGID{Pool: req.Pool, PG: pgnum}).entry(name)
		e.mu.Lock()
		if e.obj != nil {
			e.touch = time.Now()
			present = append(present, name)
		}
		e.mu.Unlock()
	}
	return OpReply{Result: OK, Keys: present, Epoch: m.Epoch}
}

// replicate forwards a committed mutation to every replica concurrently
// and waits for all acks, so the fan-out leg costs ~1 RTT regardless of
// replica count (primary-copy replication, §4.4).
func (o *OSD) replicate(ctx context.Context, req OpRequest, peers []int, epoch types.Epoch, prev, next uint64) {
	if len(peers) == 0 {
		return
	}
	fwd := req
	fwd.Replica = true
	fwd.Epoch = epoch
	fwd.PrevVersion = prev
	fwd.NewVersion = next
	var wg sync.WaitGroup
	for _, peer := range peers {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			if _, err := o.net.Call(rctx, o.Addr(), OSDAddr(peer), fwd); err != nil {
				// The replica is unreachable; durability is degraded until
				// the beacon timeout marks it down and backfill repairs.
				lctx, lcancel := context.WithTimeout(context.Background(), time.Second)
				defer lcancel()
				o.monc.Log(lctx, "warn", "replica write to "+string(OSDAddr(peer))+" failed: "+err.Error()) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
}

// doSerialOp is the measured baseline (ReplicateSerial): one
// operation per PG at a time, replicas contacted sequentially inside
// the PG-wide admission window — (R-1)·RTT per mutation, reads of
// unrelated objects blocked behind it. The window is a channel token
// rather than a held mutex, so the lock-across-RPC invariant holds here
// too.
func (o *OSD) doSerialOp(ctx context.Context, from wire.Addr, p *pg, req OpRequest, m *types.OSDMap, acting []int) OpReply {
	select {
	case p.admit <- struct{}{}:
	case <-ctx.Done():
		return OpReply{Result: EIO, Detail: "canceled awaiting pg admission", Epoch: m.Epoch}
	}
	defer func() { <-p.admit }()

	e := p.entry(req.Object)
	e.mu.Lock()
	prev := e.ver
	reply, mutated := o.applyOp(e, req, m)
	if mutated && reply.Result == OK {
		o.recordOp(p, e, req)
	}
	e.mu.Unlock()
	reply.Epoch = m.Epoch
	if mutated && reply.Result == OK {
		if err := o.commitDurable(); err != nil {
			return OpReply{Result: EIO, Detail: "wal commit: " + err.Error(), Epoch: m.Epoch}
		}
		if req.OpID != 0 {
			o.replayPut(from, req.OpID, reply)
		}
		fwd := req
		fwd.Replica = true
		fwd.Epoch = m.Epoch
		fwd.PrevVersion = prev
		fwd.NewVersion = reply.Version
		for _, peer := range acting[1:] {
			rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := o.net.Call(rctx, o.Addr(), OSDAddr(peer), fwd)
			cancel()
			if err != nil {
				lctx, lcancel := context.WithTimeout(context.Background(), time.Second)
				o.monc.Log(lctx, "warn", "replica write to "+string(OSDAddr(peer))+" failed: "+err.Error()) //nolint:errcheck
				lcancel()
			}
		}
	}
	return reply
}

// applyReplicaOp applies a primary forward in the primary's per-object
// version order. A forward that arrives ahead of its predecessor (the
// parallel fan-outs of two writes to one object can cross on the
// fabric) buffers on the slot's applied channel until the local version
// catches up to PrevVersion, bounded by ReplicaWaitTimeout; on expiry
// it applies anyway — the primary's stamp still lands via NewVersion
// and scrub repairs any residual divergence. A forward that arrives
// after a newer mutation already applied is dropped as a stale
// duplicate rather than regressing state.
func (o *OSD) applyReplicaOp(ctx context.Context, p *pg, req OpRequest, m *types.OSDMap) OpReply {
	e := p.entry(req.Object)
	e.mu.Lock()
	deadline := time.Now().Add(o.cfg.ReplicaWaitTimeout)
	for e.ver < req.PrevVersion {
		ch := e.applied
		e.mu.Unlock()
		ok := waitApplied(ctx, ch, deadline)
		e.mu.Lock()
		if !ok {
			break
		}
	}
	if e.ver > req.PrevVersion {
		reply := OpReply{Result: OK, Version: e.ver, Epoch: m.Epoch}
		e.mu.Unlock()
		return reply
	}
	preVer := e.ver
	reply, mutated := o.applyOp(e, req, m)
	if req.NewVersion > e.ver {
		// Pin to the primary's stamp so a forced out-of-order apply
		// re-converges the version sequence. Pin even when the local
		// apply was a no-op (a remove of an object this replica never
		// held, a ref delta its refset already supersedes): the primary
		// mutated, and leaving the local version behind would stall
		// every later forward at the PrevVersion wait until scrub
		// repairs the gap.
		e.ver = req.NewVersion
		if e.obj != nil {
			e.obj.Version = e.ver
		}
		reply.Version = e.ver
		if !mutated {
			e.signalLocked()
		}
	}
	if o.durable && reply.Result == OK {
		switch {
		case mutated:
			// Journal after the pin so the record carries the primary's
			// stamp, not the transient local one.
			o.recordOp(p, e, req)
		case e.ver > preVer:
			// No-op apply that still pinned the version: replaying the
			// log must land on the same stamp or later forwards stall at
			// their PrevVersion wait.
			o.backend.Record(Mutation{Kind: RecVerPin, Pool: req.Pool, PG: p.id.PG,
				Object: req.Object, Version: e.ver})
		}
	}
	e.mu.Unlock()
	reply.Epoch = m.Epoch
	return reply
}

// waitApplied blocks until ch closes (the object advanced), the
// deadline passes, or ctx is done. Returns true only for the advance.
func waitApplied(ctx context.Context, ch <-chan struct{}, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// applyOp executes one op against the object's slot. Caller holds e.mu.
// Returns the reply and whether object state changed (drives
// replication). Read replies alias stored slices — safe under the
// copy-on-write discipline documented on Object.
func (o *OSD) applyOp(e *objEntry, req OpRequest, m *types.OSDMap) (OpReply, bool) {
	switch req.Op {
	case OpStat:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Size: int64(len(e.obj.Data)), Version: e.ver}, false

	case OpRead:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Data: e.obj.Data, Version: e.ver}, false

	case OpCreate:
		if e.obj != nil {
			return OpReply{Result: EEXIST}, false
		}
		e.materializeLocked(req.Object)
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpWriteFull:
		// Manifest transition: the primary owns reference bookkeeping, so
		// overwriting (or installing, or clobbering) a manifest enqueues
		// the ref deltas of the old-vs-new block-set diff for the GC
		// sweeper, anchored to the version this apply stamps. Replicas
		// apply the bytes only; their primary already queued the deltas.
		oldSet := manifestBlockSet(objData(e))
		obj := e.materializeLocked(req.Object)
		obj.Data = append([]byte(nil), req.Data...)
		e.bumpLocked()
		if !req.Replica {
			o.queueRefDeltas(req.Pool, req.Object, e.ver, oldSet, manifestBlockSet(req.Data))
		}
		return OpReply{Result: OK, Version: e.ver}, true

	case OpAppend:
		// Appending to a manifest object destroys the manifest (the
		// strict decoder rejects trailing bytes), so its references are
		// released here — otherwise the old block set would leak.
		oldSet := manifestBlockSet(objData(e))
		obj := e.materializeLocked(req.Object)
		// Fresh allocation, not append-in-place: readers may hold the old
		// slice (copy-on-write).
		grown := make([]byte, 0, len(obj.Data)+len(req.Data))
		grown = append(append(grown, obj.Data...), req.Data...)
		obj.Data = grown
		e.bumpLocked()
		if !req.Replica {
			o.queueRefDeltas(req.Pool, req.Object, e.ver, oldSet, nil)
		}
		return OpReply{Result: OK, Version: e.ver}, true

	case OpRemove:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		oldSet := manifestBlockSet(objData(e))
		e.obj = nil
		e.bumpLocked()
		if !req.Replica {
			o.queueRefDeltas(req.Pool, req.Object, e.ver, oldSet, nil)
		}
		return OpReply{Result: OK, Version: e.ver}, true

	case OpOmapGet:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		kv := make(map[string][]byte)
		for _, k := range req.Keys {
			if v, ok := e.obj.Omap[k]; ok {
				kv[k] = v
			}
		}
		return OpReply{Result: OK, KV: kv, Version: e.ver}, false

	case OpOmapSet:
		obj := e.materializeLocked(req.Object)
		for k, v := range req.KV {
			obj.Omap[k] = append([]byte(nil), v...)
		}
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpOmapDel:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		for _, k := range req.Keys {
			delete(e.obj.Omap, k)
		}
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpOmapList:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		return OpReply{Result: OK, Keys: e.obj.OmapKeysSorted(req.Key), Version: e.ver}, false

	case OpGetXattr:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		v, ok := e.obj.Xattrs[req.Key]
		if !ok {
			return OpReply{Result: ENOENT, Detail: "no such xattr"}, false
		}
		return OpReply{Result: OK, Data: v, Version: e.ver}, false

	case OpSetXattr:
		obj := e.materializeLocked(req.Object)
		obj.Xattrs[req.Key] = append([]byte(nil), req.Data...)
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpCall:
		return o.applyCall(e, req, m)

	case OpBlockStat:
		// Single-name form (the batched probe short-circuits in
		// handleOp): existence plus a touch of the reclaim clock.
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		e.touch = time.Now()
		return OpReply{Result: OK, Size: int64(len(e.obj.Data)), Version: e.ver}, false

	case OpBlockWrite:
		if e.obj != nil {
			// Content-addressed: a block with this name already holds
			// exactly these bytes. Ack and refresh the grace clock —
			// never rewrite, so concurrent duplicate writers are free.
			e.touch = time.Now()
			return OpReply{Result: OK, Version: e.ver}, false
		}
		if !req.Replica && BlockName(req.Data) != req.Object {
			return OpReply{Result: EINVAL, Detail: "block content does not match its name"}, false
		}
		obj := e.materializeLocked(req.Object)
		obj.Data = append([]byte(nil), req.Data...)
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpBlockIncref:
		if e.obj == nil {
			return OpReply{Result: ENOENT, Detail: "no such block"}, false
		}
		// req.Key names the referencing manifest, req.Count carries the
		// manifest version that created this delta. The version-anchored
		// set ignores duplicates (resends, double-enqueued diffs after a
		// primary change) and late deltas a newer transition superseded —
		// an ack without mutation, never a double count.
		if !blockRefApply(e.obj, req.Key, uint64(req.Count), true) {
			return OpReply{Result: OK, Version: e.ver}, false
		}
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpBlockDecref:
		if e.obj == nil {
			return OpReply{Result: ENOENT, Detail: "no such block"}, false
		}
		if !blockRefApply(e.obj, req.Key, uint64(req.Count), false) {
			return OpReply{Result: OK, Version: e.ver}, false
		}
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true

	case OpBlockReclaim:
		if e.obj == nil {
			return OpReply{Result: ENOENT}, false
		}
		// The sweeper's scan decision is re-made here under the slot
		// lock: a stat, write, or incref that slipped in since the scan
		// cancels the reclaim. Replica forwards apply unconditionally —
		// the primary already decided, and a replica's own touch clock
		// is not authoritative.
		if !req.Replica && (blockRefs(e.obj) > 0 || time.Since(e.touch) < time.Duration(req.Count)) {
			return OpReply{Result: ECANCELED, Detail: "block referenced or inside the reclaim grace window"}, false
		}
		e.obj = nil
		e.bumpLocked()
		return OpReply{Result: OK, Version: e.ver}, true
	}
	return OpReply{Result: EINVAL, Detail: "unknown op"}, false
}

// objData returns the slot's current bytestream (nil for a tombstone).
// Caller holds e.mu.
func objData(e *objEntry) []byte {
	if e.obj == nil {
		return nil
	}
	return e.obj.Data
}

// recordOp journals one applied mutation to the durable backend. Caller
// holds e.mu and guarantees the op mutated with Result OK; the backend
// encodes synchronously (Backend contract), so passing slices and maps
// that alias the live object is safe. Records carry post-state (the
// full bytestream, the final xattr value) rather than op deltas, which
// makes replay idempotent under the version guard.
func (o *OSD) recordOp(p *pg, e *objEntry, req OpRequest) {
	if !o.durable {
		return
	}
	mut := Mutation{Pool: req.Pool, PG: p.id.PG, Object: req.Object, Version: e.ver}
	switch req.Op {
	case OpCreate:
		mut.Kind = RecCreate
	case OpWriteFull, OpAppend, OpBlockWrite:
		mut.Kind = RecData
		mut.Data = objData(e)
	case OpRemove, OpBlockReclaim:
		mut.Kind = RecRemove
	case OpOmapSet:
		mut.Kind = RecOmapSet
		mut.KV = req.KV
	case OpOmapDel:
		mut.Kind = RecOmapDel
		mut.Keys = req.Keys
	case OpSetXattr:
		mut.Kind = RecXattrSet
		mut.Key = req.Key
		mut.Data = e.obj.Xattrs[req.Key]
	case OpBlockIncref, OpBlockDecref:
		// The whole mutation is the refset xattr; journaling the block's
		// (potentially large) bytes again would bloat the log.
		mut.Kind = RecXattrSet
		mut.Key = xattrBlockRefs
		mut.Data = e.obj.Xattrs[xattrBlockRefs]
	default:
		// Class calls and anything structural: snapshot the whole object.
		if e.obj == nil {
			mut.Kind = RecRemove
		} else {
			mut.Kind = RecSnapshot
			mut.Obj = e.obj
		}
	}
	o.backend.Record(mut)
}

// commitDurable group-commits the journal; a no-op for MemBackend. Call
// after releasing slot locks and before acking the client — the ack
// must imply durability.
func (o *OSD) commitDurable() error {
	if !o.durable {
		return nil
	}
	return o.backend.Commit()
}

// commitBackground commits on paths with no client to fail (backfill,
// split); an error is logged and the data stays journaled-but-unsynced
// until the next op commit covers it.
func (o *OSD) commitBackground(what string) {
	if !o.durable {
		return
	}
	if err := o.backend.Commit(); err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		o.monc.Log(ctx, "warn", fmt.Sprintf("osd.%d: %s wal commit: %v", o.cfg.ID, what, err)) //nolint:errcheck
		cancel()
	}
}

// applyCall executes a class method transactionally. Native methods run
// on a clone that replaces the object only on success (they are rare
// and compiled-in). Script methods — the hot, user-supplied path — run
// directly on the live object under its slot lock with an undo log, so
// an abort rolls back in time proportional to the state touched rather
// than the object's size (ZLog stripe objects grow without bound).
// Caller holds e.mu.
func (o *OSD) applyCall(e *objEntry, req OpRequest, m *types.OSDMap) (OpReply, bool) {
	if o.rt.isNative(req.Class) {
		return o.applyNativeCall(e, req)
	}
	def, ok := m.Classes[req.Class]
	if !ok {
		return OpReply{Result: ENOENT, Detail: "no such class: " + req.Class}, false
	}

	existed := e.obj != nil
	obj := e.materializeLocked(req.Object)
	ctx := &ClassCtx{Obj: obj, Input: req.Input}
	out, rc := o.rt.callScript(def, req.Method, ctx)
	if rc != OK {
		ctx.rollback()
		if !existed {
			e.obj = nil
		}
		return OpReply{Result: rc, Detail: string(out), Data: out}, false
	}
	if ctx.mutated {
		e.bumpLocked()
	} else if !existed {
		// A pure read on a nonexistent object leaves no trace.
		e.obj = nil
	}
	return OpReply{Result: OK, Data: out, Version: e.ver}, ctx.mutated
}

// applyNativeCall runs a compiled-in method on a clone, swapping it in
// only when the method succeeds and actually changed state. Caller
// holds e.mu.
func (o *OSD) applyNativeCall(e *objEntry, req OpRequest) (OpReply, bool) {
	var work *Object
	var preDigest uint64
	if e.obj != nil {
		work = e.obj.clone()
		preDigest = e.obj.digest()
	} else {
		work = NewObject(req.Object)
		work.Version = e.ver
		preDigest = work.digest()
	}
	ctx := &ClassCtx{Obj: work, Input: req.Input}
	out, rc, found := o.rt.callNative(req.Class, req.Method, ctx)
	if !found {
		return OpReply{Result: ENOENT, Detail: "no such class: " + req.Class}, false
	}
	if rc != OK {
		// Abort: the clone is discarded; the stored object is untouched.
		// The payload still flows back (e.g. lock.acquire reports the
		// current holder alongside EEXIST).
		return OpReply{Result: rc, Detail: string(out), Data: out}, false
	}
	mutated := work.digest() != preDigest
	if mutated {
		e.obj = work
		e.bumpLocked()
	}
	return OpReply{Result: OK, Data: out, Version: e.ver}, mutated
}
