package rados

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/wal"
)

// WALBackendOptions tune a WALBackend.
type WALBackendOptions struct {
	// SegmentSize is the WAL rotation threshold (default 4 MiB).
	SegmentSize int64
	// CompactBytes is the journal-tail size past which NeedCheckpoint
	// reports true (default 1 MiB).
	CompactBytes int64
	// NoSync skips fsyncs (benchmarks only; crashes lose everything).
	NoSync bool
}

// WALBackend journals mutations to a segmented write-ahead log
// (internal/wal) and rebuilds OSD state by replaying it. Mutations are
// encoded synchronously in Record (see the Backend contract: payloads
// alias live COW state, so capture must happen before Record returns)
// and made durable in batches by Commit's group commit.
type WALBackend struct {
	log  *wal.Log
	opts WALBackendOptions

	mu     sync.Mutex
	recErr error // guarded by mu; first Record-side failure, surfaced by Commit
}

// OpenWALBackend opens (creating or recovering) a WAL backend rooted at
// dir. A torn tail left by a crash is truncated here; the stats surface
// via Replay.
func OpenWALBackend(dir string, opts WALBackendOptions) (*WALBackend, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 1 << 20
	}
	l, err := wal.Open(dir, wal.Options{SegmentSize: opts.SegmentSize, NoSync: opts.NoSync})
	if err != nil {
		return nil, err
	}
	return &WALBackend{log: l, opts: opts}, nil
}

// Durable reports true.
func (b *WALBackend) Durable() bool { return true }

// Record encodes and appends one mutation. Errors are sticky and
// surface at the next Commit, matching the contract that Record is
// called under slot locks where there is no good error path.
func (b *WALBackend) Record(mut Mutation) {
	buf := encodeMutation(nil, mut)
	if _, err := b.log.Append(buf); err != nil {
		b.mu.Lock()
		if b.recErr == nil {
			b.recErr = err
		}
		b.mu.Unlock()
	}
}

// Commit group-commits every recorded mutation.
func (b *WALBackend) Commit() error {
	b.mu.Lock()
	err := b.recErr
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal backend: deferred record failure: %w", err)
	}
	return b.log.Sync()
}

// Replay rebuilds state: first the checkpoint snapshot's mutations,
// then every journaled mutation past it. A journal record that fails
// to decode is counted in Skipped and dropped — the version-guarded
// apply path makes over-skipping safe (reconciliation and scrub repair
// the gap) where a partial apply would not be.
func (b *WALBackend) Replay(apply func(Mutation)) (ReplayStats, error) {
	stats := ReplayStats{TornBytes: b.log.TornBytes()}
	state, _, ok, err := b.log.LoadCheckpoint()
	if err != nil {
		return stats, err
	}
	if ok {
		muts, derr := decodeMutationList(state)
		if derr != nil {
			return stats, fmt.Errorf("wal backend: checkpoint decode: %w", derr)
		}
		for _, m := range muts {
			apply(m)
			stats.CheckpointRecords++
		}
	}
	rerr := b.log.Replay(func(lsn uint64, rec []byte) error {
		mut, derr := decodeMutation(rec)
		if derr != nil {
			stats.Skipped++
			return nil
		}
		apply(mut)
		stats.Records++
		return nil
	})
	return stats, rerr
}

// Checkpoint snapshots full state and truncates the journal. The
// covered LSN is sampled BEFORE collect runs: any record appended by
// the time of the sample was applied under the same slot lock that
// produced it, so the (later) snapshot necessarily includes its effect;
// records landing during collection stay in the journal and replay
// idempotently over the snapshot thanks to the version guard.
func (b *WALBackend) Checkpoint(collect func() []Mutation) error {
	upTo := b.log.Appended()
	muts := collect()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		enc := encodeMutation(nil, m)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return b.log.Checkpoint(buf, upTo)
}

// NeedCheckpoint reports whether the journal tail has outgrown the
// compaction threshold.
func (b *WALBackend) NeedCheckpoint() bool {
	return b.log.TailBytes() >= b.opts.CompactBytes
}

// Abandon simulates kill -9: unflushed appends are dropped and the log
// tail is torn.
func (b *WALBackend) Abandon() { b.log.Abandon(true) }

// Close flushes and closes the log.
func (b *WALBackend) Close() error { return b.log.Close() }

// Syncs exposes the underlying fsync-batch count (tests).
func (b *WALBackend) Syncs() uint64 { return b.log.Syncs() }

// ---- mutation codec -------------------------------------------------
//
// One record: kind byte, flags byte (bit0 = Force), pool, PG, object,
// version, then kind-specific payload. Strings and byte slices are
// uvarint-length-prefixed; maps are written in sorted key order so the
// encoding is deterministic.

const mutFlagForce = 1

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendKVMap(buf []byte, kv map[string][]byte) []byte {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendBytes(buf, kv[k])
	}
	return buf
}

func encodeMutation(buf []byte, m Mutation) []byte {
	buf = append(buf, byte(m.Kind))
	var flags byte
	if m.Force {
		flags |= mutFlagForce
	}
	buf = append(buf, flags)
	buf = appendString(buf, m.Pool)
	buf = binary.AppendUvarint(buf, uint64(m.PG))
	buf = appendString(buf, m.Object)
	buf = binary.AppendUvarint(buf, m.Version)
	switch m.Kind {
	case RecData:
		buf = appendBytes(buf, m.Data)
	case RecOmapSet:
		buf = appendKVMap(buf, m.KV)
	case RecOmapDel:
		buf = binary.AppendUvarint(buf, uint64(len(m.Keys)))
		for _, k := range m.Keys {
			buf = appendString(buf, k)
		}
	case RecXattrSet:
		buf = appendString(buf, m.Key)
		buf = appendBytes(buf, m.Data)
	case RecSnapshot:
		// Obj aliases live state; encoding now (not at Commit) is what
		// makes that safe.
		buf = appendBytes(buf, m.Obj.Data)
		buf = appendKVMap(buf, m.Obj.Omap)
		buf = appendKVMap(buf, m.Obj.Xattrs)
	case RecCreate, RecRemove, RecPurge, RecVerPin:
		// Header only.
	}
	return buf
}

type mutDecoder struct {
	buf []byte
	err error
}

func (d *mutDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("rados: mutation decode: bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *mutDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = errors.New("rados: mutation decode: short buffer")
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *mutDecoder) str() string { return string(d.bytes()) }

func (d *mutDecoder) kvMap() map[string][]byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	kv := make(map[string][]byte, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.str()
		kv[k] = d.bytes()
	}
	return kv
}

func decodeMutation(rec []byte) (Mutation, error) {
	if len(rec) < 2 {
		return Mutation{}, errors.New("rados: mutation decode: too short")
	}
	var m Mutation
	m.Kind = MutKind(rec[0])
	if m.Kind > RecVerPin {
		return Mutation{}, fmt.Errorf("rados: mutation decode: unknown kind %d", rec[0])
	}
	m.Force = rec[1]&mutFlagForce != 0
	d := &mutDecoder{buf: rec[2:]}
	m.Pool = d.str()
	m.PG = int(d.uvarint())
	m.Object = d.str()
	m.Version = d.uvarint()
	switch m.Kind {
	case RecData:
		m.Data = d.bytes()
	case RecOmapSet:
		m.KV = d.kvMap()
	case RecOmapDel:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.buf)) {
			d.err = errors.New("rados: mutation decode: key count overflows buffer")
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Keys = append(m.Keys, d.str())
		}
	case RecXattrSet:
		m.Key = d.str()
		m.Data = d.bytes()
	case RecSnapshot:
		obj := NewObject(m.Object)
		obj.Data = d.bytes()
		obj.Omap = d.kvMap()
		obj.Xattrs = d.kvMap()
		obj.Version = m.Version
		m.Obj = obj
	case RecCreate, RecRemove, RecPurge, RecVerPin:
	}
	if d.err != nil {
		return Mutation{}, d.err
	}
	return m, nil
}

func decodeMutationList(buf []byte) ([]Mutation, error) {
	d := &mutDecoder{buf: buf}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(d.buf)) {
		return nil, errors.New("rados: mutation list: count overflows buffer")
	}
	out := make([]Mutation, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		m, err := decodeMutation(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
