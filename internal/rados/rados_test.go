package rados

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mon"
	"repro/internal/paxos"
	"repro/internal/types"
	"repro/internal/wire"
)

// testCluster boots a 1-monitor quorum, numOSDs OSDs, and a pool.
type testCluster struct {
	net    *wire.Network
	mons   []*mon.Monitor
	osds   []*OSD
	client *Client
}

func bootCluster(t *testing.T, numOSDs, replicas int) *testCluster {
	t.Helper()
	net := wire.NewNetwork()
	tc := &testCluster{net: net}

	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	if err := m.Lead(context.Background()); err != nil {
		t.Fatal(err)
	}
	tc.mons = append(tc.mons, m)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 8, replicas); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numOSDs; i++ {
		osd := NewOSD(net, OSDConfig{
			ID: i, Mons: []int{0},
			GossipInterval: 20 * time.Millisecond,
		})
		if err := osd.Start(ctx); err != nil {
			t.Fatal(err)
		}
		tc.osds = append(tc.osds, osd)
	}
	tc.client = NewClient(net, "client.0", []int{0})
	if err := tc.client.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, o := range tc.osds {
			o.Stop()
		}
		m.Stop()
	})
	return tc
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestWriteReadRoundTrip(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "obj1", []byte("hello rados")); err != nil {
		t.Fatal(err)
	}
	got, err := tc.client.Read(ctx, "data", "obj1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello rados" {
		t.Fatalf("read %q", got)
	}
	size, ver, err := tc.client.Stat(ctx, "data", "obj1")
	if err != nil {
		t.Fatal(err)
	}
	if size != 11 || ver == 0 {
		t.Fatalf("stat = %d bytes v%d", size, ver)
	}
}

func TestAppend(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	for _, part := range []string{"a", "b", "c"} {
		if err := tc.client.Append(ctx, "data", "log", []byte(part)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tc.client.Read(ctx, "data", "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("read %q", got)
	}
}

func TestCreateExclusive(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.Create(ctx, "data", "x"); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Create(ctx, "data", "x"); !errors.Is(err, ErrExists) {
		t.Fatalf("second create = %v, want ErrExists", err)
	}
}

func TestReadMissing(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if _, err := tc.client.Read(ctx, "data", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRemove(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "tmp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Remove(ctx, "data", "tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Read(ctx, "data", "tmp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after remove = %v", err)
	}
}

func TestOmapOperations(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	kv := map[string][]byte{
		"pos.3": []byte("three"),
		"pos.1": []byte("one"),
		"pos.2": []byte("two"),
		"meta":  []byte("m"),
	}
	if err := tc.client.OmapSet(ctx, "data", "idx", kv); err != nil {
		t.Fatal(err)
	}
	got, err := tc.client.OmapGet(ctx, "data", "idx", "pos.1", "pos.3", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["pos.1"]) != "one" || string(got["pos.3"]) != "three" {
		t.Fatalf("omap get = %v", got)
	}
	if _, ok := got["missing"]; ok {
		t.Fatal("missing key returned")
	}
	keys, err := tc.client.OmapList(ctx, "data", "idx", "pos.")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "pos.1" || keys[2] != "pos.3" {
		t.Fatalf("omap list = %v (must be sorted)", keys)
	}
	if err := tc.client.OmapDel(ctx, "data", "idx", "pos.2"); err != nil {
		t.Fatal(err)
	}
	keys, _ = tc.client.OmapList(ctx, "data", "idx", "pos.")
	if len(keys) != 2 {
		t.Fatalf("after del: %v", keys)
	}
}

func TestXattrs(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.SetXattr(ctx, "data", "o", "epoch", []byte("42")); err != nil {
		t.Fatal(err)
	}
	v, err := tc.client.GetXattr(ctx, "data", "o", "epoch")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "42" {
		t.Fatalf("xattr = %q", v)
	}
	if _, err := tc.client.GetXattr(ctx, "data", "o", "none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing xattr err = %v", err)
	}
}

func TestNativeClassCounter(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	for i := 1; i <= 5; i++ {
		out, err := tc.client.Call(ctx, "data", "ctr", "counter", "incr", nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != fmt.Sprint(i) {
			t.Fatalf("incr -> %q, want %d", out, i)
		}
	}
	out, err := tc.client.Call(ctx, "data", "ctr", "counter", "read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "5" {
		t.Fatalf("read -> %q", out)
	}
}

func TestNativeClassLock(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if _, err := tc.client.Call(ctx, "data", "res", "lock", "acquire", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	// Idempotent for the same owner.
	if _, err := tc.client.Call(ctx, "data", "res", "lock", "acquire", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	// Another owner is refused and told who holds it.
	out, err := tc.client.Call(ctx, "data", "res", "lock", "acquire", []byte("bob"))
	if !errors.Is(err, ErrExists) {
		t.Fatalf("bob acquire = %v", err)
	}
	if string(out) != "alice" {
		t.Fatalf("holder = %q", out)
	}
	// Wrong owner cannot release.
	if _, err := tc.client.Call(ctx, "data", "res", "lock", "release", []byte("bob")); !errors.Is(err, ErrInval) {
		t.Fatalf("bob release = %v", err)
	}
	if _, err := tc.client.Call(ctx, "data", "res", "lock", "release", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "res", "lock", "acquire", []byte("bob")); err != nil {
		t.Fatalf("bob acquire after release: %v", err)
	}
}

func TestNativeClassLogAndSnap(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	for i := 0; i < 3; i++ {
		if _, err := tc.client.Call(ctx, "data", "events", "log", "append", []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := tc.client.Call(ctx, "data", "events", "log", "tail", []byte("2"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `["e1","e2"]` {
		t.Fatalf("tail = %s", out)
	}

	if err := tc.client.WriteFull(ctx, "data", "blk", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "blk", "snapmeta", "create_snap", []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.WriteFull(ctx, "data", "blk", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "blk", "snapmeta", "rollback_snap", []byte("s1")); err != nil {
		t.Fatal(err)
	}
	got, _ := tc.client.Read(ctx, "data", "blk")
	if string(got) != "v1" {
		t.Fatalf("after rollback: %q", got)
	}
}

func TestChecksumClassCaches(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "big", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sum1, err := tc.client.Call(ctx, "data", "big", "checksum", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := tc.client.Call(ctx, "data", "big", "checksum", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(sum1) != string(sum2) {
		t.Fatalf("checksum changed: %s vs %s", sum1, sum2)
	}
	// Mutating the object invalidates the cache.
	if err := tc.client.WriteFull(ctx, "data", "big", []byte("different")); err != nil {
		t.Fatal(err)
	}
	sum3, err := tc.client.Call(ctx, "data", "big", "checksum", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(sum3) == string(sum1) {
		t.Fatal("checksum not recomputed after write")
	}
}

func TestRefcountAndGC(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "shared", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "shared", "refcount", "get", nil); err != nil {
		t.Fatal(err)
	}
	// Still referenced: gc refuses.
	if _, err := tc.client.Call(ctx, "data", "shared", "gc", "reap", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reap live = %v", err)
	}
	if _, err := tc.client.Call(ctx, "data", "shared", "refcount", "put", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "shared", "gc", "reap", nil); err != nil {
		t.Fatal(err)
	}
	got, _ := tc.client.Read(ctx, "data", "shared")
	if len(got) != 0 {
		t.Fatalf("after reap: %q", got)
	}
}

const scriptCounterV1 = `
function incr(cls)
	local v = tonumber(cls.omap_get("n")) or 0
	v = v + 1
	cls.omap_set("n", tostring(v))
	return tostring(v)
end
function get(cls)
	return cls.omap_get("n") or "0"
end
`

// waitClassLive blocks until every OSD has the class at version >= v.
func waitClassLive(t *testing.T, tc *testCluster, name string, v uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, o := range tc.osds {
		for {
			o.mu.Lock()
			live := o.classLive[name]
			o.mu.Unlock()
			if live >= v {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("osd.%d never saw class %s v%d", o.cfg.ID, name, v)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestScriptClassInstallAndCall(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.Mon().InstallClass(ctx, "kcounter", scriptCounterV1, "metadata"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "kcounter", 1)
	if err := tc.client.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		out, err := tc.client.Call(ctx, "data", "kc", "kcounter", "incr", nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != fmt.Sprint(i) {
			t.Fatalf("incr -> %q", out)
		}
	}
	out, err := tc.client.Call(ctx, "data", "kc", "kcounter", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "3" {
		t.Fatalf("get -> %q", out)
	}
}

func TestScriptClassUpgradeNoRestart(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	if err := tc.client.Mon().InstallClass(ctx, "greet", `function hello(cls) return "v1" end`, "other"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "greet", 1)
	tc.client.RefreshMap(ctx) //nolint:errcheck
	out, err := tc.client.Call(ctx, "data", "g", "greet", "hello", nil)
	if err != nil || string(out) != "v1" {
		t.Fatalf("v1 call = %q, %v", out, err)
	}
	// Upgrade in place; daemons keep running.
	if err := tc.client.Mon().InstallClass(ctx, "greet", `function hello(cls) return "v2" end`, "other"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "greet", 2)
	tc.client.RefreshMap(ctx) //nolint:errcheck
	out, err = tc.client.Call(ctx, "data", "g", "greet", "hello", nil)
	if err != nil || string(out) != "v2" {
		t.Fatalf("v2 call = %q, %v", out, err)
	}
}

func TestScriptClassAtomicAbort(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	script := `
function update(cls)
	cls.write("partial")
	error("ECANCELED: validation failed")
end
`
	if err := tc.client.Mon().InstallClass(ctx, "txn", script, "metadata"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "txn", 1)
	tc.client.RefreshMap(ctx) //nolint:errcheck
	if err := tc.client.WriteFull(ctx, "data", "doc", []byte("original")); err != nil {
		t.Fatal(err)
	}
	_, err := tc.client.Call(ctx, "data", "doc", "txn", "update", nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	got, _ := tc.client.Read(ctx, "data", "doc")
	if string(got) != "original" {
		t.Fatalf("aborted method leaked mutation: %q", got)
	}
}

func TestScriptClassRunawayIsKilled(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 30*time.Second)
	if err := tc.client.Mon().InstallClass(ctx, "spin", `function loop(cls) while true do end end`, "other"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "spin", 1)
	tc.client.RefreshMap(ctx) //nolint:errcheck
	_, err := tc.client.Call(ctx, "data", "victim", "spin", "loop", nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("runaway script err = %v", err)
	}
	// The daemon survives and serves further requests.
	if err := tc.client.WriteFull(ctx, "data", "victim", []byte("alive")); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicMatrixIndexInterface(t *testing.T) {
	// The Section 4.2 example: atomically update a matrix in the
	// bytestream and its index in the omap.
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 10*time.Second)
	script := `
function put_row(cls)
	-- input: "<row>:<values>"
	local sep = string.find(cls.input, ":")
	if sep == nil then error("EINVAL: malformed input") end
	local row = string.sub(cls.input, 1, sep - 1)
	local vals = string.sub(cls.input, sep + 1)
	local off = cls.size()
	cls.append(vals .. "\n")
	cls.omap_set("row." .. row, tostring(off) .. "," .. tostring(string.len(vals) + 1))
	return tostring(off)
end
`
	if err := tc.client.Mon().InstallClass(ctx, "matrix", script, "metadata"); err != nil {
		t.Fatal(err)
	}
	waitClassLive(t, tc, "matrix", 1)
	tc.client.RefreshMap(ctx) //nolint:errcheck
	if _, err := tc.client.Call(ctx, "data", "m", "matrix", "put_row", []byte("0:1 2 3")); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Call(ctx, "data", "m", "matrix", "put_row", []byte("1:4 5 6")); err != nil {
		t.Fatal(err)
	}
	kv, err := tc.client.OmapGet(ctx, "data", "m", "row.0", "row.1")
	if err != nil {
		t.Fatal(err)
	}
	if string(kv["row.0"]) != "0,6" || string(kv["row.1"]) != "6,6" {
		t.Fatalf("index = %v", map[string]string{"row.0": string(kv["row.0"]), "row.1": string(kv["row.1"])})
	}
	data, _ := tc.client.Read(ctx, "data", "m")
	if string(data) != "1 2 3\n4 5 6\n" {
		t.Fatalf("matrix = %q", data)
	}
}

func TestOSDFailureDataSurvives(t *testing.T) {
	tc := bootCluster(t, 4, 3)
	ctx := ctxT(t, 15*time.Second)
	// Write enough objects that every OSD is a primary for something.
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("obj%d", i)
		if err := tc.client.WriteFull(ctx, "data", name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash OSD 1 and mark it down (in production the beacon timeout
	// does this; the test does it explicitly for determinism).
	tc.osds[1].Stop()
	if err := tc.client.Mon().MarkOSDDown(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	// Give survivors a moment to learn the map and backfill.
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("obj%d", i)
		got, err := tc.client.Read(ctx, "data", name)
		if err != nil {
			t.Fatalf("read %s after failure: %v", name, err)
		}
		if string(got) != name {
			t.Fatalf("read %s = %q", name, got)
		}
	}
}

func TestBeaconTimeoutMarksDown(t *testing.T) {
	net := wire.NewNetwork()
	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		BeaconTimeout:    100 * time.Millisecond,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	defer m.Stop()
	if err := m.Lead(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 10*time.Second)
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 4, 1); err != nil {
		t.Fatal(err)
	}
	osd := NewOSD(net, OSDConfig{
		ID: 0, Mons: []int{0},
		BeaconInterval: 20 * time.Millisecond,
	})
	if err := osd.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash it; beacons stop; monitor marks it down.
	osd.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mm, err := boot.GetOSDMap(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(mm.UpOSDs()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never marked silent OSD down")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScrubRepairsDivergence(t *testing.T) {
	tc := bootCluster(t, 3, 3)
	ctx := ctxT(t, 15*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "gold", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	// Find the acting set and corrupt a replica behind the system's back.
	m := tc.client.CachedMap()
	_, acting, err := Locate(m, "data", "gold")
	if err != nil {
		t.Fatal(err)
	}
	victim := tc.osds[acting[1]]
	pgid := PGID{Pool: "data", PG: PGForObject("gold", m.Pools["data"].PGNum)}
	ve := victim.getPG(pgid).entry("gold")
	ve.mu.Lock()
	ve.obj.Data = []byte("CORRUPT")
	ve.mu.Unlock()

	// Run a scrub round on the primary.
	primary := tc.osds[acting[0]]
	primary.scrubOnce()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ve.mu.Lock()
		data := string(ve.obj.Data)
		ve.mu.Unlock()
		if data == "pristine" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrub never repaired replica (data=%q)", data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if primary.ScrubRepairs() == 0 {
		t.Fatal("repair not counted")
	}
}

// TestForceBackfillOrdersDeletions pins the Force purge discipline: a
// scrub repair deletes an entry the push omitted only when it can order
// the deletion — via the sender's tombstone version, or, for names the
// sender never saw, after the entry has sat unmutated past the purge
// grace. A just-applied forward (the create that raced the sender's
// scan) must survive.
func TestForceBackfillOrdersDeletions(t *testing.T) {
	o := NewOSD(wire.NewNetwork(), OSDConfig{ID: 0})
	p := o.getPG(PGID{Pool: "data", PG: 0})
	mk := func(name string, ver uint64, age time.Duration) *objEntry {
		e := p.entry(name)
		e.mu.Lock()
		obj := e.materializeLocked(name)
		obj.Data = []byte(name)
		e.ver = ver
		obj.Version = ver
		e.touch = time.Now().Add(-age)
		e.mu.Unlock()
		return e
	}
	// A forward applied after the sender's scan: live, fresh, unknown to
	// the sender.
	newborn := mk("newborn", 1, 0)
	// Genuine divergence: unknown to the sender and long unmutated.
	stale := mk("stale", 3, time.Minute)
	// Deleted by the sender at version 5; local version 4 predates it.
	deleted := mk("deleted", 4, time.Minute)
	// Rewritten locally (version 9) after the sender's tombstone at 7.
	rewritten := mk("rewritten", 9, time.Minute)

	o.applyBackfill(backfillMsg{
		Pool: "data", PG: 0, Force: true,
		Tombstones: map[string]uint64{"deleted": 5, "rewritten": 7},
	})

	check := func(e *objEntry, wantLive bool, wantVer uint64, what string) {
		t.Helper()
		e.mu.Lock()
		live, ver := e.obj != nil, e.ver
		e.mu.Unlock()
		if live != wantLive || ver != wantVer {
			t.Errorf("%s: live=%v ver=%d, want live=%v ver=%d", what, live, ver, wantLive, wantVer)
		}
	}
	check(newborn, true, 1, "racing create")
	check(stale, false, 4, "unordered stale divergence") // purge bumps 3 -> 4
	check(deleted, false, 5, "tombstoned by sender")     // adopts the tombstone version
	check(rewritten, true, 9, "locally newer than tombstone")
}

func TestGossipPropagatesMapWithLimitedFanout(t *testing.T) {
	// Monitor pushes to only 1 subscriber; the rest must learn the new
	// epoch via OSD-to-OSD gossip (Section 4.4 / Figure 8 pipeline).
	net := wire.NewNetwork()
	m := mon.New(net, mon.Config{
		ID: 0, Peers: []int{0},
		ProposalInterval: 5 * time.Millisecond,
		GossipFanout:     1,
		Paxos: paxos.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   200 * time.Millisecond,
		},
	})
	m.Start()
	defer m.Stop()
	if err := m.Lead(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 15*time.Second)
	boot := mon.NewClient(net, "client.boot", []int{0})
	if err := boot.CreatePool(ctx, "data", 4, 1); err != nil {
		t.Fatal(err)
	}
	var osds []*OSD
	for i := 0; i < 8; i++ {
		o := NewOSD(net, OSDConfig{ID: i, Mons: []int{0}, GossipInterval: 10 * time.Millisecond})
		if err := o.Start(ctx); err != nil {
			t.Fatal(err)
		}
		osds = append(osds, o)
	}
	defer func() {
		for _, o := range osds {
			o.Stop()
		}
	}()
	if err := boot.InstallClass(ctx, "gossiped", "function f(cls) return 1 end", "other"); err != nil {
		t.Fatal(err)
	}
	target, err := boot.GetOSDMap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, o := range osds {
		for o.Epoch() < target.Epoch {
			if time.Now().After(deadline) {
				t.Fatalf("osd.%d stuck at epoch %d < %d", o.cfg.ID, o.Epoch(), target.Epoch)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// ---- placement properties ----

func TestPropPGForObjectInRange(t *testing.T) {
	f := func(name string, pgNum uint8) bool {
		n := int(pgNum%64) + 1
		pg := PGForObject(name, n)
		return pg >= 0 && pg < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mapWithOSDs(ids ...int) *types.OSDMap {
	m := types.NewOSDMap()
	for _, id := range ids {
		m.OSDs[id] = types.OSDInfo{ID: id, State: types.StateUp}
	}
	return m
}

func TestOSDsForPGDistinctAndSized(t *testing.T) {
	m := mapWithOSDs(0, 1, 2, 3, 4)
	for pg := 0; pg < 32; pg++ {
		set := OSDsForPG(m, "p", pg, 3)
		if len(set) != 3 {
			t.Fatalf("pg %d: set %v", pg, set)
		}
		seen := map[int]bool{}
		for _, id := range set {
			if seen[id] {
				t.Fatalf("pg %d: duplicate in %v", pg, set)
			}
			seen[id] = true
		}
	}
}

func TestOSDsForPGMinimalMovement(t *testing.T) {
	// HRW property: removing an OSD that is not in a PG's acting set
	// must not change that acting set.
	full := mapWithOSDs(0, 1, 2, 3, 4, 5, 6, 7)
	for pg := 0; pg < 64; pg++ {
		set := OSDsForPG(full, "p", pg, 3)
		inSet := map[int]bool{}
		for _, id := range set {
			inSet[id] = true
		}
		for victim := 0; victim < 8; victim++ {
			if inSet[victim] {
				continue
			}
			reduced := mapWithOSDs()
			for id := 0; id < 8; id++ {
				if id != victim {
					reduced.OSDs[id] = types.OSDInfo{ID: id, State: types.StateUp}
				}
			}
			after := OSDsForPG(reduced, "p", pg, 3)
			for i := range set {
				if set[i] != after[i] {
					t.Fatalf("pg %d: removing uninvolved osd.%d moved set %v -> %v", pg, victim, set, after)
				}
			}
		}
	}
}

func TestPropPlacementBalanced(t *testing.T) {
	// Primaries spread across OSDs: no OSD is primary for more than half
	// of a reasonable number of PGs (loose bound; catches gross skew).
	m := mapWithOSDs(0, 1, 2, 3, 4, 5, 6, 7)
	counts := map[int]int{}
	const pgs = 256
	for pg := 0; pg < pgs; pg++ {
		set := OSDsForPG(m, "pool", pg, 3)
		counts[set[0]]++
	}
	for id, n := range counts {
		if n > pgs/2 {
			t.Fatalf("osd.%d is primary for %d/%d PGs", id, n, pgs)
		}
	}
	if len(counts) < 6 {
		t.Fatalf("only %d OSDs ever primary", len(counts))
	}
}
