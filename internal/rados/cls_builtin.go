package rados

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// BuiltinClasses returns the compiled-in object interface inventory.
// These play the role of Ceph's production C++ classes, and their
// categories mirror Table 1 of the paper (logging, metadata,
// management, locking, other). cmd/figures -exp table1 prints the
// inventory grouped the same way.
func BuiltinClasses() []*NativeClass {
	return []*NativeClass{
		clsLog(),
		clsSnapMeta(),
		clsFsck(),
		clsChecksum(),
		clsLock(),
		clsRefcount(),
		clsGC(),
		clsNumOps(),
		clsDedup(),
	}
}

// clsLog is a logging-category class: an append-only record stream in
// the omap (the paper's example: geographically distributed replica
// logs).
func clsLog() *NativeClass {
	return &NativeClass{
		Name:     "log",
		Category: "logging",
		Methods: map[string]NativeMethod{
			// append stores the input at the next sequence number.
			"append": func(ctx *ClassCtx) ([]byte, ResultCode) {
				seq, err := omapCounter(ctx.Obj, "log.seq")
				if err != nil {
					return []byte("corrupt log.seq counter: " + err.Error()), EIO
				}
				key := fmt.Sprintf("log.%020d", seq)
				ctx.Obj.Omap[key] = append([]byte(nil), ctx.Input...)
				setOmapCounter(ctx.Obj, "log.seq", seq+1)
				return []byte(strconv.FormatUint(seq, 10)), OK
			},
			// tail returns the last N entries, N parsed from input.
			"tail": func(ctx *ClassCtx) ([]byte, ResultCode) {
				n, err := strconv.Atoi(strings.TrimSpace(string(ctx.Input)))
				if err != nil || n <= 0 {
					return []byte("tail wants a positive count"), EINVAL
				}
				keys := ctx.Obj.OmapKeysSorted("log.")
				// Drop the counter key.
				var entries []string
				for _, k := range keys {
					if k == "log.seq" {
						continue
					}
					entries = append(entries, string(ctx.Obj.Omap[k]))
				}
				if n < len(entries) {
					entries = entries[len(entries)-n:]
				}
				out, err := json.Marshal(entries)
				if err != nil {
					return []byte("encode failed: " + err.Error()), EIO
				}
				return out, OK
			},
			// count returns the number of appended entries.
			"count": func(ctx *ClassCtx) ([]byte, ResultCode) {
				seq, err := omapCounter(ctx.Obj, "log.seq")
				if err != nil {
					return []byte("corrupt log.seq counter: " + err.Error()), EIO
				}
				return []byte(strconv.FormatUint(seq, 10)), OK
			},
		},
	}
}

// clsSnapMeta is a metadata-category class: named snapshots of the
// object's bytestream (the paper's example: snapshots in the block
// device).
func clsSnapMeta() *NativeClass {
	return &NativeClass{
		Name:     "snapmeta",
		Category: "metadata",
		Methods: map[string]NativeMethod{
			"create_snap": func(ctx *ClassCtx) ([]byte, ResultCode) {
				name := strings.TrimSpace(string(ctx.Input))
				if name == "" {
					return []byte("snapshot needs a name"), EINVAL
				}
				key := "snap." + name
				if _, ok := ctx.Obj.Omap[key]; ok {
					return []byte("snapshot exists"), EEXIST
				}
				ctx.Obj.Omap[key] = append([]byte(nil), ctx.Obj.Data...)
				return nil, OK
			},
			"rollback_snap": func(ctx *ClassCtx) ([]byte, ResultCode) {
				name := strings.TrimSpace(string(ctx.Input))
				v, ok := ctx.Obj.Omap["snap."+name]
				if !ok {
					return []byte("no such snapshot"), ENOENT
				}
				ctx.Obj.Data = append([]byte(nil), v...)
				return nil, OK
			},
			"remove_snap": func(ctx *ClassCtx) ([]byte, ResultCode) {
				name := strings.TrimSpace(string(ctx.Input))
				key := "snap." + name
				if _, ok := ctx.Obj.Omap[key]; !ok {
					return []byte("no such snapshot"), ENOENT
				}
				delete(ctx.Obj.Omap, key)
				return nil, OK
			},
			"list_snaps": func(ctx *ClassCtx) ([]byte, ResultCode) {
				var names []string
				for _, k := range ctx.Obj.OmapKeysSorted("snap.") {
					names = append(names, strings.TrimPrefix(k, "snap."))
				}
				out, err := json.Marshal(names)
				if err != nil {
					return []byte("encode failed: " + err.Error()), EIO
				}
				return out, OK
			},
		},
	}
}

// clsFsck is a management-category class: scan extents for repair (the
// paper's file system repair example).
func clsFsck() *NativeClass {
	return &NativeClass{
		Name:     "fsck",
		Category: "management",
		Methods: map[string]NativeMethod{
			// scan_extents summarizes the bytestream as fixed extents
			// with per-extent checksums, JSON-encoded.
			"scan_extents": func(ctx *ClassCtx) ([]byte, ResultCode) {
				const extent = 4096
				type ext struct {
					Off int    `json:"off"`
					Len int    `json:"len"`
					Sum uint64 `json:"sum"`
				}
				var exts []ext
				for off := 0; off < len(ctx.Obj.Data); off += extent {
					end := off + extent
					if end > len(ctx.Obj.Data) {
						end = len(ctx.Obj.Data)
					}
					h := fnv.New64a()
					h.Write(ctx.Obj.Data[off:end]) //nolint:errcheck
					exts = append(exts, ext{Off: off, Len: end - off, Sum: h.Sum64()})
				}
				out, err := json.Marshal(exts)
				if err != nil {
					return []byte("encode failed: " + err.Error()), EIO
				}
				return out, OK
			},
		},
	}
}

// clsChecksum is a metadata-category class: compute and cache the
// object checksum server-side (the paper's motivating example of a
// co-designed interface — "remotely computing and caching the checksum
// of an object extent").
func clsChecksum() *NativeClass {
	return &NativeClass{
		Name:     "checksum",
		Category: "metadata",
		Methods: map[string]NativeMethod{
			"get": func(ctx *ClassCtx) ([]byte, ResultCode) {
				// Serve the cached value when it matches the current
				// version; otherwise recompute and cache.
				cachedVer, okV := ctx.Obj.Xattrs["cksum.ver"]
				cached, okC := ctx.Obj.Xattrs["cksum.val"]
				ver := strconv.FormatUint(ctx.Obj.Version, 10)
				if okV && okC && string(cachedVer) == ver {
					return cached, OK
				}
				h := fnv.New64a()
				h.Write(ctx.Obj.Data) //nolint:errcheck
				val := []byte(strconv.FormatUint(h.Sum64(), 16))
				ctx.Obj.Xattrs["cksum.ver"] = []byte(ver)
				ctx.Obj.Xattrs["cksum.val"] = val
				return val, OK
			},
		},
	}
}

// clsLock is the locking-category class: grants clients exclusive
// access to an object (Table 1: "Grants clients exclusive access").
func clsLock() *NativeClass {
	return &NativeClass{
		Name:     "lock",
		Category: "locking",
		Methods: map[string]NativeMethod{
			// acquire input: "<owner>"; fails with EEXIST when held by
			// another owner, succeeds idempotently for the same owner.
			"acquire": func(ctx *ClassCtx) ([]byte, ResultCode) {
				owner := strings.TrimSpace(string(ctx.Input))
				if owner == "" {
					return []byte("lock needs an owner"), EINVAL
				}
				cur, held := ctx.Obj.Xattrs["lock.owner"]
				if held && string(cur) != owner {
					return cur, EEXIST
				}
				ctx.Obj.Xattrs["lock.owner"] = []byte(owner)
				return nil, OK
			},
			"release": func(ctx *ClassCtx) ([]byte, ResultCode) {
				owner := strings.TrimSpace(string(ctx.Input))
				cur, held := ctx.Obj.Xattrs["lock.owner"]
				if !held {
					return nil, ENOENT
				}
				if string(cur) != owner {
					return cur, EINVAL
				}
				delete(ctx.Obj.Xattrs, "lock.owner")
				return nil, OK
			},
			"info": func(ctx *ClassCtx) ([]byte, ResultCode) {
				cur, held := ctx.Obj.Xattrs["lock.owner"]
				if !held {
					return nil, ENOENT
				}
				return cur, OK
			},
			// break_lock forcibly clears the lock (administrative).
			"break_lock": func(ctx *ClassCtx) ([]byte, ResultCode) {
				delete(ctx.Obj.Xattrs, "lock.owner")
				return nil, OK
			},
		},
	}
}

// clsRefcount is an other-category class: reference counting shared
// objects.
func clsRefcount() *NativeClass {
	return &NativeClass{
		Name:     "refcount",
		Category: "other",
		Methods: map[string]NativeMethod{
			"get": func(ctx *ClassCtx) ([]byte, ResultCode) {
				n, err := omapCounter(ctx.Obj, "refs")
				if err != nil {
					return []byte("corrupt refs counter: " + err.Error()), EIO
				}
				setOmapCounter(ctx.Obj, "refs", n+1)
				return []byte(strconv.FormatUint(n+1, 10)), OK
			},
			"put": func(ctx *ClassCtx) ([]byte, ResultCode) {
				n, err := omapCounter(ctx.Obj, "refs")
				if err != nil {
					return []byte("corrupt refs counter: " + err.Error()), EIO
				}
				if n == 0 {
					return []byte("refcount underflow"), EINVAL
				}
				setOmapCounter(ctx.Obj, "refs", n-1)
				if n-1 == 0 {
					// Mark reclaimable; the gc class collects it.
					ctx.Obj.Xattrs["gc.dead"] = []byte("1")
				}
				return []byte(strconv.FormatUint(n-1, 10)), OK
			},
			"count": func(ctx *ClassCtx) ([]byte, ResultCode) {
				n, err := omapCounter(ctx.Obj, "refs")
				if err != nil {
					return []byte("corrupt refs counter: " + err.Error()), EIO
				}
				return []byte(strconv.FormatUint(n, 10)), OK
			},
		},
	}
}

// clsGC is an other-category class: garbage collection support.
func clsGC() *NativeClass {
	return &NativeClass{
		Name:     "gc",
		Category: "other",
		Methods: map[string]NativeMethod{
			// reap clears a dead object's payload; returns ENOENT when
			// the object is still referenced.
			"reap": func(ctx *ClassCtx) ([]byte, ResultCode) {
				if string(ctx.Obj.Xattrs["gc.dead"]) != "1" {
					return []byte("object is live"), ENOENT
				}
				ctx.Obj.Data = nil
				for k := range ctx.Obj.Omap {
					delete(ctx.Obj.Omap, k)
				}
				delete(ctx.Obj.Xattrs, "gc.dead")
				return nil, OK
			},
		},
	}
}

// clsNumOps is a metadata-category class used by tests and examples: an
// atomic 64-bit counter in the bytestream (the style of interface ZLog's
// sequencer would use were it object-hosted).
func clsNumOps() *NativeClass {
	return &NativeClass{
		Name:     "counter",
		Category: "metadata",
		Methods: map[string]NativeMethod{
			"incr": func(ctx *ClassCtx) ([]byte, ResultCode) {
				var v uint64
				if len(ctx.Obj.Data) == 8 {
					v = binary.BigEndian.Uint64(ctx.Obj.Data)
				}
				v++
				buf := make([]byte, 8)
				binary.BigEndian.PutUint64(buf, v)
				ctx.Obj.Data = buf
				return []byte(strconv.FormatUint(v, 10)), OK
			},
			"read": func(ctx *ClassCtx) ([]byte, ResultCode) {
				var v uint64
				if len(ctx.Obj.Data) == 8 {
					v = binary.BigEndian.Uint64(ctx.Obj.Data)
				}
				return []byte(strconv.FormatUint(v, 10)), OK
			},
		},
	}
}

// clsDedup is an other-category class: introspection over the
// content-addressed dedup path (dedup.go), running next to the data
// like every other interface. "info" decodes a manifest object into a
// JSON summary; "refs" reports a block object's reference count.
func clsDedup() *NativeClass {
	return &NativeClass{
		Name:     "dedup",
		Category: "other",
		Methods: map[string]NativeMethod{
			"info": func(ctx *ClassCtx) ([]byte, ResultCode) {
				m, isManifest, err := DecodeManifest(ctx.Obj.Data)
				if !isManifest {
					return []byte("object is not a dedup manifest"), EINVAL
				}
				if err != nil {
					return []byte("corrupt manifest: " + err.Error()), EIO
				}
				out, jerr := json.Marshal(map[string]any{
					"total_len":     m.TotalLen,
					"chunks":        len(m.Chunks),
					"unique_blocks": len(m.blockNames()),
				})
				if jerr != nil {
					return []byte("encode failed: " + jerr.Error()), EIO
				}
				return out, OK
			},
			"refs": func(ctx *ClassCtx) ([]byte, ResultCode) {
				if !IsBlockName(ctx.Obj.Name) {
					return []byte("object is not a dedup block"), EINVAL
				}
				return []byte(strconv.FormatInt(blockRefs(ctx.Obj), 10)), OK
			},
		},
	}
}

func omapCounter(o *Object, key string) (uint64, error) {
	v, ok := o.Omap[key]
	if !ok {
		return 0, nil
	}
	return strconv.ParseUint(string(v), 10, 64)
}

func setOmapCounter(o *Object, key string, n uint64) {
	o.Omap[key] = []byte(strconv.FormatUint(n, 10))
}
