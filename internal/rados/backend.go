package rados

// Backend is the OSD's pluggable persistence seam. The OSD keeps its
// authoritative state in memory exactly as before; a durable backend
// additionally journals every applied mutation so a hard-killed OSD
// can rebuild the in-memory index by replaying the log.
//
// Contract: Record is called synchronously under the mutated object's
// slot lock and MUST capture (encode or copy) the mutation payload
// before returning — the Data/KV/Obj fields alias live copy-on-write
// state that later operations will replace, and maps (Omap/Xattrs) are
// mutated in place by subsequent ops. Commit makes every recorded
// mutation durable and is called after the slot lock is released, so a
// slow fsync never blocks other objects. Record failures are sticky
// and surface at the next Commit.
type Backend interface {
	// Durable reports whether this backend persists anything. The OSD
	// skips record/commit bookkeeping entirely when false.
	Durable() bool
	// Record journals one applied mutation (see contract above).
	Record(Mutation)
	// Commit makes all recorded mutations durable (group-committed).
	Commit() error
	// Replay invokes apply for the checkpoint's mutations and then for
	// every journaled mutation past the checkpoint, in log order.
	Replay(apply func(Mutation)) (ReplayStats, error)
	// Checkpoint persists a full-state snapshot (obtained from collect)
	// and truncates the journal behind it.
	Checkpoint(collect func() []Mutation) error
	// NeedCheckpoint reports whether enough journal has accumulated
	// since the last checkpoint to make one worthwhile.
	NeedCheckpoint() bool
	// Abandon simulates a process crash: buffered journal writes are
	// dropped and the tail is torn. The backend is dead afterwards.
	Abandon()
	// Close flushes and releases the backend.
	Close() error
}

// MutKind enumerates the journaled mutation types.
type MutKind uint8

// Journal record kinds. RecData carries the object's post-state
// bytestream (not the op's delta), making replay idempotent; RecSnapshot
// carries a whole object (class calls and backfill merges, where a
// delta would need op semantics to replay); RecVerPin is a version-only
// advance (a replica no-op apply that pinned the primary's stamp).
const (
	RecCreate MutKind = iota
	RecData
	RecRemove
	RecPurge // slot dropped by a pool resplit; replays as a tombstone
	RecOmapSet
	RecOmapDel
	RecXattrSet
	RecSnapshot
	RecVerPin
)

func (k MutKind) String() string {
	names := [...]string{"create", "data", "remove", "purge", "omap-set",
		"omap-del", "xattr-set", "snapshot", "ver-pin"}
	if int(k) < len(names) {
		return names[k]
	}
	return "rec(?)"
}

// Mutation is one journaled state change of one object. Version is the
// object's slot version after the change; replay applies a mutation
// only when its Version is ahead of the rebuilt slot (Force snapshots
// excepted, mirroring scrub's authoritative backfill).
type Mutation struct {
	Kind    MutKind
	Pool    string
	PG      int
	Object  string
	Version uint64
	Force   bool

	Data []byte            // RecData: full bytestream; RecXattrSet: value
	Key  string            // RecXattrSet key
	Keys []string          // RecOmapDel keys
	KV   map[string][]byte // RecOmapSet pairs
	Obj  *Object           // RecSnapshot payload
}

// ReplayStats summarizes one startup replay.
type ReplayStats struct {
	CheckpointRecords int   // mutations restored from the checkpoint snapshot
	Records           int   // journal mutations replayed past the checkpoint
	Skipped           int   // journal records that failed to decode (dropped)
	TornBytes         int64 // torn-tail bytes the log truncated on open
}

// MemBackend is the non-durable backend: the seed's pure in-memory
// behavior. All methods are no-ops.
type MemBackend struct{}

// Durable reports false: nothing persists.
func (MemBackend) Durable() bool { return false }

// Record drops the mutation.
func (MemBackend) Record(Mutation) {}

// Commit is a no-op.
func (MemBackend) Commit() error { return nil }

// Replay restores nothing.
func (MemBackend) Replay(func(Mutation)) (ReplayStats, error) { return ReplayStats{}, nil }

// Checkpoint is a no-op.
func (MemBackend) Checkpoint(func() []Mutation) error { return nil }

// NeedCheckpoint is always false.
func (MemBackend) NeedCheckpoint() bool { return false }

// Abandon is a no-op: the state was already only in memory.
func (MemBackend) Abandon() {}

// Close is a no-op.
func (MemBackend) Close() error { return nil }
