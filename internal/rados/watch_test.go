package rados

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

func wireAddr(prefix string, i int) wire.Addr {
	return wire.Addr(fmt.Sprintf("%s%d", prefix, i))
}

var _ = context.Background

func TestWatchNotify(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 20*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "shared", []byte("s")); err != nil {
		t.Fatal(err)
	}

	watcher := NewClient(tc.net, "client.watcher", []int{0})
	if err := watcher.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	h, err := watcher.Watch(ctx, "data", "shared")
	if err != nil {
		t.Fatal(err)
	}

	acked, err := tc.client.Notify(ctx, "data", "shared", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acked = %d, want 1", acked)
	}
	select {
	case ev := <-h.Events():
		if string(ev.Payload) != "ping" || ev.Object != "shared" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification never arrived")
	}
}

func TestMultipleWatchers(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 20*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "topic", []byte("t")); err != nil {
		t.Fatal(err)
	}
	var handles []*WatchHandle
	for i := 0; i < 3; i++ {
		w := NewClient(tc.net, wireAddr("client.w", i), []int{0})
		if err := w.RefreshMap(ctx); err != nil {
			t.Fatal(err)
		}
		h, err := w.Watch(ctx, "data", "topic")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	acked, err := tc.client.Notify(ctx, "data", "topic", []byte("fan-out"))
	if err != nil || acked != 3 {
		t.Fatalf("acked = %d, %v", acked, err)
	}
	for i, h := range handles {
		select {
		case ev := <-h.Events():
			if string(ev.Payload) != "fan-out" {
				t.Fatalf("watcher %d event = %+v", i, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("watcher %d starved", i)
		}
	}
}

func TestWatchCancel(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 20*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w := NewClient(tc.net, "client.w", []int{0})
	if err := w.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	h, err := w.Watch(ctx, "data", "o")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := h.Check(ctx)
	if err != nil || !ok {
		t.Fatalf("check = %v, %v", ok, err)
	}
	if err := h.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	ok, err = h.Check(ctx)
	if err != nil || ok {
		t.Fatalf("check after cancel = %v, %v", ok, err)
	}
	acked, err := tc.client.Notify(ctx, "data", "o", []byte("z"))
	if err != nil || acked != 0 {
		t.Fatalf("acked = %d after cancel", acked)
	}
}

func TestDeadWatcherDropped(t *testing.T) {
	tc := bootCluster(t, 3, 2)
	ctx := ctxT(t, 20*time.Second)
	if err := tc.client.WriteFull(ctx, "data", "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w := NewClient(tc.net, "client.dead", []int{0})
	if err := w.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Watch(ctx, "data", "o"); err != nil {
		t.Fatal(err)
	}
	// The watcher crashes.
	tc.net.Unlisten("client.dead")
	acked, err := tc.client.Notify(ctx, "data", "o", []byte("z"))
	if err != nil || acked != 0 {
		t.Fatalf("dead watcher acked: %d, %v", acked, err)
	}
	// Its registration was reaped: a second notify doesn't retry it.
	acked, _ = tc.client.Notify(ctx, "data", "o", []byte("z2"))
	if acked != 0 {
		t.Fatal("registration survived")
	}
}
