package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mantle"
	"repro/internal/mds"
	"repro/internal/stats"
	"repro/internal/wire"
)

// BalancerKind selects the balancing configuration under test.
type BalancerKind string

// Balancer configurations (Figures 9 and 10a).
const (
	BalNone           BalancerKind = "none"
	BalCephFSCPU      BalancerKind = "cephfs-cpu"
	BalCephFSWorkload BalancerKind = "cephfs-workload"
	BalCephFSHybrid   BalancerKind = "cephfs-hybrid"
	BalMantle         BalancerKind = "mantle"
)

// BalanceConfig parameterizes the multi-sequencer balancing experiments.
type BalanceConfig struct {
	Kind            BalancerKind
	MDSs            int           // metadata ranks (paper: 3)
	Sequencers      int           // independent logs (paper: 3)
	ClientsPerSeq   int           // paper: 4
	Duration        time.Duration // total run
	Tick            time.Duration // balance tick (paper: 10 s, compressed here)
	Bucket          time.Duration // time-series resolution
	MantlePolicy    string        // policy body for BalMantle (default PolicySequencer)
	ManualMode      *mds.MigrationMode
	ManualMigrateAt time.Duration // when set with ManualMode, export at this offset
	ManualHalf      bool          // migrate half (true) or all (false) sequencers
}

func (c *BalanceConfig) defaults() {
	if c.MDSs <= 0 {
		c.MDSs = 3
	}
	if c.Sequencers <= 0 {
		c.Sequencers = 3
	}
	if c.ClientsPerSeq <= 0 {
		c.ClientsPerSeq = 4
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Second
	}
	if c.Tick <= 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.Bucket <= 0 {
		c.Bucket = 250 * time.Millisecond
	}
	if c.MantlePolicy == "" {
		c.MantlePolicy = mantle.PolicySequencer
	}
}

// BalanceResult carries throughput-over-time per sequencer and overall.
type BalanceResult struct {
	Cluster *stats.TimeSeries
	PerSeq  []*stats.TimeSeries
	// TotalOps is the overall operation count; SteadyRate is the mean
	// cluster rate over the final third of the run (the "stabilized"
	// regime Figures 9/10 quantify).
	TotalOps   int64
	SteadyRate float64
}

// seqPath names sequencer i.
func seqPath(i int) string { return fmt.Sprintf("/zlog/seq%d", i) }

// The metadata-server cost model for the balancing experiments. Request
// handling and tail-finding cost the same; client-mode imports pay a
// coherence round-trip to the former authority (Section 6.2.1).
var balanceCost = mds.Config{
	HandleTime:    50 * time.Microsecond,
	ServiceTime:   50 * time.Microsecond,
	CoherenceTime: 50 * time.Microsecond,
}

// RunBalanceExperiment drives the Figures 9/10/12 scenario: Sequencers
// round-trip sequencer inodes, all created on rank 0, hammered by
// ClientsPerSeq clients each, under the selected balancer.
func RunBalanceExperiment(ctx context.Context, cfg BalanceConfig) (*BalanceResult, error) {
	cfg.defaults()

	mdsCfg := balanceCost
	var balFactory func(rank int) mds.Balancer
	switch cfg.Kind {
	case BalNone:
	case BalCephFSCPU:
		balFactory = func(int) mds.Balancer { return mds.NewCephFSBalancer(mds.CephFSCPU) }
	case BalCephFSWorkload:
		balFactory = func(int) mds.Balancer { return mds.NewCephFSBalancer(mds.CephFSWorkload) }
	case BalCephFSHybrid:
		balFactory = func(int) mds.Balancer { return mds.NewCephFSBalancer(mds.CephFSHybrid) }
	case BalMantle:
		// Installed after boot; factory built against the cluster below.
	default:
		return nil, fmt.Errorf("workload: unknown balancer kind %q", cfg.Kind)
	}
	if cfg.Kind != BalNone && cfg.ManualMode == nil {
		mdsCfg.BalanceInterval = cfg.Tick
	}

	bootOpts := core.Options{
		MDSs: cfg.MDSs, OSDs: 4,
		MDS:         mdsCfg,
		MDSBalancer: balFactory,
	}
	if cfg.Kind == BalMantle {
		bootOpts.MDSBalancer = nil // attach after we have the network
	}
	var cluster *core.Cluster
	var err error
	if cfg.Kind == BalMantle {
		// Mantle balancers need the fabric, so build the cluster with a
		// factory closing over a forward reference.
		var netRef *wire.Network
		bootOpts.MDSBalancer = func(rank int) mds.Balancer {
			return &lazyBalancer{mk: func() mds.Balancer {
				return mantle.NewBalancer(netRef, wire.Addr(fmt.Sprintf("mantle.%d", rank)), []int{0}, "metadata", cfg.Tick)
			}}
		}
		cluster, err = core.Boot(ctx, bootOpts)
		if err != nil {
			return nil, err
		}
		netRef = cluster.Net
	} else {
		cluster, err = core.Boot(ctx, bootOpts)
		if err != nil {
			return nil, err
		}
	}
	defer cluster.Stop()

	if cfg.Kind == BalMantle {
		rc := cluster.NewRadosClient("client.mantle-admin")
		monc := cluster.NewMonClient("client.mantle-admin.mon")
		if err := mantle.InstallPolicy(ctx, rc, monc, "metadata", "exp-policy", cfg.MantlePolicy); err != nil {
			return nil, err
		}
	}

	// Create the sequencers (all land on rank 0).
	setup := cluster.NewMDSClient("client.setup")
	if err := setup.Start(ctx); err != nil {
		return nil, err
	}
	defer setup.Stop()
	rt := mds.CapPolicy{} // round-trip mode: contention at the MDS
	for i := 0; i < cfg.Sequencers; i++ {
		if err := setup.Open(ctx, seqPath(i), mds.TypeSequencer, &rt); err != nil {
			return nil, err
		}
	}

	res := &BalanceResult{
		Cluster: stats.NewTimeSeries(cfg.Bucket),
	}
	for i := 0; i < cfg.Sequencers; i++ {
		res.PerSeq = append(res.PerSeq, stats.NewTimeSeries(cfg.Bucket))
	}

	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stopAt := time.Now().Add(cfg.Duration)
	for s := 0; s < cfg.Sequencers; s++ {
		for c := 0; c < cfg.ClientsPerSeq; c++ {
			cl := cluster.NewMDSClient(fmt.Sprintf("client.s%dc%d", s, c))
			if err := cl.Start(ctx); err != nil {
				return nil, err
			}
			defer cl.Stop()
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stopAt) {
					cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
					_, err := cl.Next(cctx, seqPath(s))
					cancel()
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						continue
					}
					now := time.Now()
					res.Cluster.Record(now, 1)
					res.PerSeq[s].Record(now, 1)
					mu.Lock()
					total++
					mu.Unlock()
				}
			}()
		}
	}

	// Manual migration (Figures 10b / 12): export at the given offset.
	if cfg.ManualMode != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := cfg.ManualMigrateAt
			if at <= 0 {
				at = cfg.Duration / 3
			}
			select {
			case <-time.After(at):
			case <-ctx.Done():
				return
			}
			n := cfg.Sequencers
			if cfg.ManualHalf {
				n = (cfg.Sequencers + 1) / 2
			}
			for i := 0; i < n; i++ {
				target := 1 + i%(cfg.MDSs-1)
				ectx, cancel := context.WithTimeout(ctx, 5*time.Second)
				// Retry briefly: exports skip inodes with in-flight ops.
				for attempt := 0; attempt < 50; attempt++ {
					if err := cluster.MDSs[0].Export(ectx, seqPath(i), target, *cfg.ManualMode); err == nil {
						break
					}
					if !waitRetry(ectx, 10*time.Millisecond) {
						break
					}
				}
				cancel()
			}
		}()
	}

	wg.Wait()
	res.TotalOps = total

	rates := res.Cluster.Rates()
	tail := len(rates) / 3
	if tail == 0 {
		tail = len(rates)
	}
	sum := 0.0
	for _, r := range rates[len(rates)-tail:] {
		sum += r
	}
	res.SteadyRate = sum / float64(tail)
	return res, nil
}

// lazyBalancer defers construction until first use (the Mantle balancer
// needs the cluster's network, which exists only after boot).
type lazyBalancer struct {
	mk   func() mds.Balancer
	once sync.Once
	b    mds.Balancer
}

// Decide implements mds.Balancer.
func (l *lazyBalancer) Decide(ctx context.Context, in mds.BalancerInput) (mds.Decision, error) {
	l.once.Do(func() { l.b = l.mk() })
	return l.b.Decide(ctx, in)
}

// ModeMatrixPoint is one bar of Figure 10b.
type ModeMatrixPoint struct {
	Label      string
	SteadyRate float64
}

// RunModeMatrix reproduces Figure 10b: 2 sequencers, 2 ranks, manual
// migration in {client, proxy} x {half, full} plus the no-balancing
// baseline.
func RunModeMatrix(ctx context.Context, durPer time.Duration) ([]ModeMatrixPoint, error) {
	client, proxy := mds.ModeClient, mds.ModeProxy
	cases := []struct {
		label string
		mode  *mds.MigrationMode
		half  bool
	}{
		{"no-balancing", nil, false},
		{"client-half", &client, true},
		{"client-full", &client, false},
		{"proxy-half", &proxy, true},
		{"proxy-full", &proxy, false},
	}
	var out []ModeMatrixPoint
	for _, tc := range cases {
		res, err := RunBalanceExperiment(ctx, BalanceConfig{
			Kind: BalNone, MDSs: 2, Sequencers: 2, ClientsPerSeq: 4,
			Duration: durPer, ManualMode: tc.mode, ManualHalf: tc.half,
			ManualMigrateAt: durPer / 4,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", tc.label, err)
		}
		out = append(out, ModeMatrixPoint{Label: tc.label, SteadyRate: res.SteadyRate})
	}
	return out, nil
}

// BackoffPoint is one row of the §6.2.3 study.
type BackoffPoint struct {
	Label      string
	SteadyRate float64
	TotalOps   int64
}

// RunBackoffStudy compares an aggressive policy with conservative
// variants (when() threshold + cooldown), confirming "the more
// conservative the approach the less overall throughput".
func RunBackoffStudy(ctx context.Context, durPer time.Duration) ([]BackoffPoint, error) {
	aggressive := `
local total = 0
local n = 0
for r, m in pairs(mds) do total = total + m["load"] n = n + 1 end
local avg = total / n
if mds[whoami]["load"] > avg * 1.05 then
	for r, m in pairs(mds) do
		if r ~= whoami and m["load"] < avg then targets[r] = mds[whoami]["load"] - avg end
	end
end
mode = "client"
`
	cases := []struct {
		label  string
		policy string
	}{
		{"aggressive", aggressive},
		{"conservative-when", mantle.PolicySequencer},
		{"backoff-cooldown", mantle.PolicyBackoff},
	}
	var out []BackoffPoint
	for _, tc := range cases {
		res, err := RunBalanceExperiment(ctx, BalanceConfig{
			Kind: BalMantle, MantlePolicy: tc.policy, Duration: durPer,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", tc.label, err)
		}
		out = append(out, BackoffPoint{Label: tc.label, SteadyRate: res.SteadyRate, TotalOps: res.TotalOps})
	}
	return out, nil
}

// waitRetry pauses d before the next retry, or returns false as soon as
// ctx is done.
func waitRetry(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
