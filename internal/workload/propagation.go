package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// PropagationConfig parameterizes the Figure 8 experiment: how fast a
// newly installed object interface becomes live on every OSD, via the
// monitor's Paxos commit, a bounded direct push, and OSD-to-OSD gossip.
type PropagationConfig struct {
	OSDs             int           // paper: 120 (RAM-backed)
	Updates          int           // paper: 1000
	ProposalInterval time.Duration // paper: 1 s default, 222 ms tuned
	GossipInterval   time.Duration
	GossipFanout     int // monitor's direct-push bound
}

// PropagationResult carries Figure 8's distribution: one latency sample
// per (update, OSD) pair, measured from commit acknowledgment to the
// daemon making the interface live.
type PropagationResult struct {
	Latency *stats.Histogram // microseconds
	// CommitLatency is the submit-to-commit time (the Paxos proposal
	// cost the paper reports separately: ~1 s default vs ~222 ms tuned).
	CommitLatency *stats.Histogram
}

// RunPropagation measures cluster-wide interface-update propagation.
func RunPropagation(ctx context.Context, cfg PropagationConfig) (*PropagationResult, error) {
	if cfg.OSDs <= 0 {
		cfg.OSDs = 24
	}
	if cfg.Updates <= 0 {
		cfg.Updates = 50
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 20 * time.Millisecond
	}
	if cfg.GossipFanout <= 0 {
		cfg.GossipFanout = 4
	}
	cluster, err := core.Boot(ctx, core.Options{
		OSDs:             cfg.OSDs,
		ProposalInterval: cfg.ProposalInterval,
		GossipFanout:     cfg.GossipFanout,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	res := &PropagationResult{
		Latency:       stats.NewHistogram(),
		CommitLatency: stats.NewHistogram(),
	}

	// Instrument every OSD: record when each class version becomes live.
	type liveKey struct {
		version uint64
		osd     int
	}
	var mu sync.Mutex
	liveAt := make(map[liveKey]time.Time)
	cond := sync.NewCond(&mu)
	for i, osd := range cluster.OSDs {
		i := i
		osd.OnClassLive(func(name string, version uint64) {
			if name != "exp.iface" {
				return
			}
			mu.Lock()
			liveAt[liveKey{version, i}] = time.Now()
			cond.Broadcast()
			mu.Unlock()
		})
	}

	monc := cluster.NewMonClient("client.exp")
	for u := 1; u <= cfg.Updates; u++ {
		script := fmt.Sprintf("function probe(cls) return %d end", u)
		t0 := time.Now()
		if err := monc.InstallClass(ctx, "exp.iface", script, "other"); err != nil {
			return nil, err
		}
		committed := time.Now()
		res.CommitLatency.AddDuration(committed.Sub(t0))

		// Wait for the update to be live everywhere, then record each
		// OSD's individual latency from the commit point.
		version := uint64(u)
		deadline := time.Now().Add(30 * time.Second)
		mu.Lock()
		for {
			have := 0
			for i := range cluster.OSDs {
				if _, ok := liveAt[liveKey{version, i}]; ok {
					have++
				}
			}
			if have == len(cluster.OSDs) {
				break
			}
			if time.Now().After(deadline) {
				mu.Unlock()
				return nil, fmt.Errorf("workload: update %d live on only %d/%d OSDs", u, have, len(cluster.OSDs))
			}
			waitCond(cond, 50*time.Millisecond)
		}
		for i := range cluster.OSDs {
			d := liveAt[liveKey{version, i}].Sub(committed)
			if d < 0 {
				// A direct push can land while the commit ack is still in
				// flight to the client; that is zero propagation delay.
				d = 0
			}
			res.Latency.AddDuration(d)
		}
		mu.Unlock()
	}
	return res, nil
}

// waitCond waits on cond with a timeout (cond.Wait has none).
func waitCond(cond *sync.Cond, d time.Duration) {
	done := make(chan struct{})
	t := time.AfterFunc(d, func() {
		cond.Broadcast()
		close(done)
	})
	cond.Wait()
	t.Stop()
	select {
	case <-done:
	default:
	}
}
