package workload

import (
	"bytes"
	"math"
	"testing"
)

func TestDupCorpusDeterministic(t *testing.T) {
	cfg := DupCorpusConfig{Size: 8 << 20, DupRatio: 0.5, SegmentSize: 1 << 20}
	a := GenerateDupCorpus(42, cfg)
	b := GenerateDupCorpus(42, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	if len(a) != cfg.Size {
		t.Fatalf("corpus size = %d, want %d", len(a), cfg.Size)
	}
	c := GenerateDupCorpus(43, cfg)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestDupCorpusMeasuredRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MiB corpora per ratio")
	}
	// 1 MiB segments over a 64 MiB corpus: the quota pacing lands the
	// emitted duplicate fraction on the request exactly for these
	// ratios, and boundary-chunk resynchronization (~2 average chunks
	// per repeated segment) costs well under the 2% tolerance.
	for _, want := range []float64{0.25, 0.50, 0.75} {
		corpus := GenerateDupCorpus(7, DupCorpusConfig{
			Size:        64 << 20,
			DupRatio:    want,
			SegmentSize: 1 << 20,
		})
		got, err := MeasureDupRatio(corpus, nil)
		if err != nil {
			t.Fatalf("MeasureDupRatio(ratio=%v): %v", want, err)
		}
		if math.Abs(got-want) > 0.02 {
			t.Errorf("requested dup ratio %.2f, measured %.4f (|err| > 0.02)", want, got)
		}
	}
}

func TestDupCorpusAllUnique(t *testing.T) {
	corpus := GenerateDupCorpus(1, DupCorpusConfig{Size: 4 << 20, DupRatio: 0, SegmentSize: 1 << 20})
	got, err := MeasureDupRatio(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.001 {
		t.Fatalf("all-unique corpus measured dup ratio %.4f", got)
	}
}
