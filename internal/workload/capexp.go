// Package workload contains the experiment drivers that regenerate the
// paper's evaluation (Section 6): the sequencer capability experiments
// (Figures 5-7), interface propagation (Figure 8), and the load
// balancing experiments (Figures 9, 10, 12, and the §6.2.3 backoff
// study). cmd/figures and the root benchmark suite both run these.
package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/stats"
)

// CapConfig parameterizes the Figures 5-7 sequencer experiments.
type CapConfig struct {
	Clients  int           // contending clients (paper: 2)
	Duration time.Duration // measurement window per configuration
	Policy   mds.CapPolicy // capability hand-off policy under test
	// ThinkTime is the per-operation client-side work (obtaining a log
	// position is followed by the actual log I/O in CORFU); it bounds a
	// client's local op rate the way real append work does. Default
	// 20 us.
	ThinkTime time.Duration
}

// pacer charges virtual per-op client time, amortized over the sleep
// granularity the same way the MDS CPU model does.
type pacer struct{ debt time.Duration }

func (p *pacer) pay(d time.Duration) {
	p.debt += d
	if p.debt >= time.Millisecond {
		t0 := time.Now()
		time.Sleep(p.debt)
		p.debt -= time.Since(t0)
	}
}

// OpRecord is one timestamped sequencer operation (Figure 5's dots).
type OpRecord struct {
	Client  int
	Offset  time.Duration // since experiment start
	Value   uint64
	Latency time.Duration
}

// CapResult is the outcome of one capability experiment.
type CapResult struct {
	Ops        []OpRecord
	Throughput float64            // total ops/s
	Latency    *stats.Histogram   // all ops, microseconds
	PerClient  []*stats.Histogram // per-client latency, microseconds
}

// RunCapExperiment boots a one-MDS cluster and drives Clients concurrent
// clients against a single sequencer inode under the given policy,
// recording every operation.
func RunCapExperiment(ctx context.Context, cfg CapConfig) (*CapResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 20 * time.Microsecond
	}
	cluster, err := core.Boot(ctx, core.Options{
		MDSs: 1, OSDs: 2,
		// Capability exchange (recall, release, re-grant) costs real
		// metadata-server work; this is what makes best-effort — which
		// redistributes constantly — the worst configuration, as in the
		// paper's Figure 6.
		MDS: mds.Config{HandleTime: time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	const path = "/zlog/capexp/seq"
	setup := cluster.NewMDSClient("client.setup")
	if err := setup.Start(ctx); err != nil {
		return nil, err
	}
	defer setup.Stop()
	if err := setup.Open(ctx, path, mds.TypeSequencer, &cfg.Policy); err != nil {
		return nil, err
	}

	res := &CapResult{Latency: stats.NewHistogram()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	stopAt := start.Add(cfg.Duration)

	for i := 0; i < cfg.Clients; i++ {
		cl := cluster.NewMDSClient(fmt.Sprintf("client.cap%d", i))
		if err := cl.Start(ctx); err != nil {
			return nil, err
		}
		defer cl.Stop()
		hist := stats.NewHistogram()
		res.PerClient = append(res.PerClient, hist)
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pace pacer
			for time.Now().Before(stopAt) {
				t0 := time.Now()
				v, err := cl.Next(ctx, path)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					continue
				}
				lat := time.Since(t0)
				pace.pay(cfg.ThinkTime)
				hist.AddDuration(lat)
				res.Latency.AddDuration(lat)
				mu.Lock()
				res.Ops = append(res.Ops, OpRecord{
					Client: i, Offset: t0.Sub(start), Value: v, Latency: lat,
				})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Throughput = float64(len(res.Ops)) / cfg.Duration.Seconds()
	return res, nil
}

// InterleaveProfile summarizes a Figure 5 trace: how often ownership of
// the sequencer switches between clients and the mean run length.
type InterleaveProfile struct {
	Switches   int
	MeanRunLen float64
	MaxRunLen  int
}

// Interleaving computes the ownership profile of a trace, ordering ops
// by assigned value (the sequencer's total order).
func Interleaving(ops []OpRecord) InterleaveProfile {
	if len(ops) == 0 {
		return InterleaveProfile{}
	}
	byValue := make([]OpRecord, len(ops))
	copy(byValue, ops)
	// Values are unique; simple insertion-friendly sort.
	sortOps(byValue)
	p := InterleaveProfile{MaxRunLen: 1}
	run := 1
	runs := 0
	for i := 1; i < len(byValue); i++ {
		if byValue[i].Client == byValue[i-1].Client {
			run++
			if run > p.MaxRunLen {
				p.MaxRunLen = run
			}
		} else {
			p.Switches++
			runs++
			run = 1
		}
	}
	runs++
	p.MeanRunLen = float64(len(byValue)) / float64(runs)
	return p
}

func sortOps(ops []OpRecord) {
	// Standard sort; kept local to avoid importing sort at every site.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].Value < ops[j-1].Value; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

// QuotaSweepPoint is one row of Figure 6.
type QuotaSweepPoint struct {
	Quota      int
	Throughput float64 // ops/s
	MeanLatUs  float64
	P99Us      float64
	PerClient  []*stats.Histogram
}

// RunQuotaSweep reproduces Figure 6/7: two clients, a fixed maximum
// reservation (paper: 0.25 s), and a sweep over the log-position quota.
func RunQuotaSweep(ctx context.Context, quotas []int, reservation, durPer time.Duration) ([]QuotaSweepPoint, error) {
	var out []QuotaSweepPoint
	for _, q := range quotas {
		res, err := RunCapExperiment(ctx, CapConfig{
			Clients:  2,
			Duration: durPer,
			Policy:   mds.CapPolicy{Cacheable: true, Quota: q, Delay: reservation},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, QuotaSweepPoint{
			Quota:      q,
			Throughput: res.Throughput,
			MeanLatUs:  res.Latency.Mean(),
			P99Us:      res.Latency.Percentile(99),
			PerClient:  res.PerClient,
		})
	}
	return out, nil
}
