package workload

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/stats"
	"repro/internal/zlog"
)

// AppendSweepConfig parameterizes the batched-client append sweep that
// extends Figures 6/7 end to end: instead of measuring the sequencer in
// isolation, it measures whole ZLog appends (sequencer range + striped
// object writes) per batch size.
type AppendSweepConfig struct {
	Batches  []int         // batch sizes to sweep; 1 means serial Append
	Duration time.Duration // measurement window per batch size
	Policy   mds.CapPolicy // sequencer capability policy
	// NetLatency is the simulated fabric latency; the default (200 us)
	// is what makes the pipelining visible, as in the paper's cluster.
	NetLatency time.Duration
}

// AppendSweepPoint is one batch-size measurement: entry throughput and
// per-entry latency (a batch's dispatch latency amortized over its
// entries).
type AppendSweepPoint struct {
	Batch      int
	Entries    int
	Throughput float64 // entries/s
	MeanLatUs  float64
	P99Us      float64
	Latency    *stats.Histogram
}

// RunAppendSweep boots one cluster per batch size and drives a single
// client through serial Append (batch 1) or AppendBatch, recording
// per-entry amortized latency.
func RunAppendSweep(ctx context.Context, cfg AppendSweepConfig) ([]AppendSweepPoint, error) {
	if len(cfg.Batches) == 0 {
		cfg.Batches = []int{1, 8, 64}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.NetLatency <= 0 {
		cfg.NetLatency = 200 * time.Microsecond
	}
	var out []AppendSweepPoint
	for _, batch := range cfg.Batches {
		p, err := runAppendPoint(ctx, cfg, batch)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func runAppendPoint(ctx context.Context, cfg AppendSweepConfig, batch int) (AppendSweepPoint, error) {
	cluster, err := core.Boot(ctx, core.Options{
		MDSs: 1, OSDs: 3, Pools: []string{"zlog"}, Replicas: 2,
		NetLatency: cfg.NetLatency,
	})
	if err != nil {
		return AppendSweepPoint{}, err
	}
	defer cluster.Stop()

	l, err := zlog.Open(ctx, cluster.Net, "client.sweep", cluster.MonIDs(), zlog.Options{
		Name: "sweep", Pool: "zlog", SeqPolicy: cfg.Policy,
	})
	if err != nil {
		return AppendSweepPoint{}, err
	}
	defer l.Close()

	payload := []byte("append-sweep-entry")
	entries := make([][]byte, batch)
	for i := range entries {
		entries[i] = payload
	}

	hist := stats.NewHistogram()
	total := 0
	start := time.Now()
	stopAt := start.Add(cfg.Duration)
	for time.Now().Before(stopAt) {
		t0 := time.Now()
		if batch == 1 {
			_, err = l.Append(ctx, payload)
		} else {
			_, err = l.AppendBatch(ctx, entries)
		}
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			continue
		}
		perEntry := time.Since(t0) / time.Duration(batch)
		for i := 0; i < batch; i++ {
			hist.AddDuration(perEntry)
		}
		total += batch
	}
	elapsed := time.Since(start)
	return AppendSweepPoint{
		Batch:      batch,
		Entries:    total,
		Throughput: float64(total) / elapsed.Seconds(),
		MeanLatUs:  hist.Mean(),
		P99Us:      hist.Percentile(99),
		Latency:    hist,
	}, nil
}
