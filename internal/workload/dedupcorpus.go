package workload

import (
	"crypto/sha256"
	"math/rand"

	"repro/internal/cdc"
)

// Duplicate-heavy corpus generation for the dedup data path: the bench
// and chaos workloads need payloads whose *content-defined* duplicate
// fraction is controllable and reproducible. The generator emits the
// corpus as a sequence of segments; each segment is either fresh random
// bytes or a verbatim repeat of an earlier segment. Duplication is
// quota-paced — a segment repeats whenever the duplicate byte count has
// fallen behind DupRatio of the output — rather than coin-flipped, so
// the realized ratio tracks the request deterministically instead of
// with binomial noise. The seeded RNG only supplies fresh content and
// picks which earlier segment to repeat, so the same (seed, cfg) pair
// always yields the same bytes. Segments are much larger than the
// chunker's maximum chunk size, so a repeated segment re-chunks to
// (almost) all-duplicate blocks — only the chunks straddling segment
// boundaries are perturbed — and the measured dedup ratio lands within
// a couple percent of the requested one.

// DupCorpusConfig parameterizes GenerateDupCorpus.
type DupCorpusConfig struct {
	// Size is the corpus length in bytes.
	Size int
	// DupRatio in [0,1) is the fraction of bytes that repeat earlier
	// content. 0 yields an all-unique corpus.
	DupRatio float64
	// SegmentSize is the granularity of repetition; zero defaults to
	// 512 KiB. Larger segments track the requested ratio more tightly
	// (fewer boundary chunks lost to resynchronization).
	SegmentSize int
}

func (c *DupCorpusConfig) defaults() {
	if c.SegmentSize <= 0 {
		c.SegmentSize = 512 * 1024
	}
}

// GenerateDupCorpus builds a corpus of cfg.Size bytes where a DupRatio
// fraction repeats earlier segments. Deterministic in (seed, cfg).
func GenerateDupCorpus(seed int64, cfg DupCorpusConfig) []byte {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, cfg.Size)
	var segments [][]byte // previously emitted unique segments
	dupBytes := 0
	for len(out) < cfg.Size {
		n := cfg.SegmentSize
		if rem := cfg.Size - len(out); n > rem {
			n = rem
		}
		// Repeat an earlier segment whenever duplicate output has
		// fallen behind the requested fraction of what is emitted so
		// far. The first segment is always unique (nothing to repeat).
		if len(segments) > 0 && float64(dupBytes) < cfg.DupRatio*float64(len(out)) {
			src := segments[rng.Intn(len(segments))]
			if len(src) >= n {
				out = append(out, src[:n]...)
				dupBytes += n
				continue
			}
		}
		seg := make([]byte, n)
		rng.Read(seg)
		segments = append(segments, seg)
		out = append(out, seg...)
	}
	return out
}

// MeasureDupRatio chunks the corpus and returns the fraction of bytes
// belonging to chunks whose content already appeared earlier in the
// stream — exactly the fraction a content-addressed store would not
// re-store. cfg may be nil for the default chunking parameters.
func MeasureDupRatio(data []byte, cfg *cdc.Config) (float64, error) {
	chunks, err := cdc.Split(data, cfg)
	if err != nil {
		return 0, err
	}
	seen := make(map[[sha256.Size]byte]bool, len(chunks))
	dup := 0
	for _, c := range chunks {
		h := sha256.Sum256(data[c.Off : c.Off+c.Len])
		if seen[h] {
			dup += c.Len
		} else {
			seen[h] = true
		}
	}
	if len(data) == 0 {
		return 0, nil
	}
	return float64(dup) / float64(len(data)), nil
}
