package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/mds"
)

// These are the shape tests: they assert the qualitative results of the
// paper's evaluation (who wins, in which direction) on compressed runs.

func TestCapPolicyInterleaving(t *testing.T) {
	// Figure 5: best-effort hand-off interleaves clients finely; a
	// quota policy serves them in batches of up to the quota.
	ctx := context.Background()
	be, err := RunCapExperiment(ctx, CapConfig{
		Clients: 2, Duration: 1500 * time.Millisecond,
		Policy: mds.CapPolicy{Cacheable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The client pacer amortizes think time in ~50-op bursts, so
	// best-effort runs bottom out around one burst; a 500-op quota sits
	// well above that floor.
	quota, err := RunCapExperiment(ctx, CapConfig{
		Clients: 2, Duration: 1500 * time.Millisecond,
		Policy: mds.CapPolicy{Cacheable: true, Quota: 500, Delay: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	pbe := Interleaving(be.Ops)
	pq := Interleaving(quota.Ops)
	t.Logf("best-effort: ops=%d switches=%d meanRun=%.1f", len(be.Ops), pbe.Switches, pbe.MeanRunLen)
	t.Logf("quota-500:   ops=%d switches=%d meanRun=%.1f", len(quota.Ops), pq.Switches, pq.MeanRunLen)
	if len(be.Ops) == 0 || len(quota.Ops) == 0 {
		t.Fatal("no operations recorded")
	}
	if pq.MeanRunLen <= pbe.MeanRunLen {
		t.Fatalf("quota policy should batch: meanRun quota=%.1f <= best-effort=%.1f",
			pq.MeanRunLen, pbe.MeanRunLen)
	}
	if pbe.Switches < 4 {
		t.Fatalf("best-effort barely interleaved (switches=%d)", pbe.Switches)
	}
}

func TestDelayPolicyHoldsLonger(t *testing.T) {
	// Figure 5b: the delay policy produces longer exclusive runs than
	// best-effort.
	ctx := context.Background()
	be, err := RunCapExperiment(ctx, CapConfig{
		Clients: 2, Duration: 1200 * time.Millisecond,
		Policy: mds.CapPolicy{Cacheable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	delay, err := RunCapExperiment(ctx, CapConfig{
		Clients: 2, Duration: 1200 * time.Millisecond,
		Policy: mds.CapPolicy{Cacheable: true, Delay: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	pbe, pd := Interleaving(be.Ops), Interleaving(delay.Ops)
	t.Logf("best-effort meanRun=%.1f, delay meanRun=%.1f", pbe.MeanRunLen, pd.MeanRunLen)
	if pd.MeanRunLen <= pbe.MeanRunLen {
		t.Fatalf("delay should hold longer: %.1f <= %.1f", pd.MeanRunLen, pbe.MeanRunLen)
	}
}

func TestQuotaSweepTradeoff(t *testing.T) {
	// Figure 6: larger quotas buy throughput (more local increments per
	// capability exchange).
	ctx := context.Background()
	pts, err := RunQuotaSweep(ctx, []int{1, 1000}, 250*time.Millisecond, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	small, large := pts[0], pts[1]
	t.Logf("quota=1:    %.0f ops/s, mean %.0fus", small.Throughput, small.MeanLatUs)
	t.Logf("quota=1000: %.0f ops/s, mean %.0fus", large.Throughput, large.MeanLatUs)
	if large.Throughput < small.Throughput*2 {
		t.Fatalf("large quota should dominate: %.0f vs %.0f ops/s",
			large.Throughput, small.Throughput)
	}
	if large.MeanLatUs >= small.MeanLatUs {
		t.Fatalf("large quota should have lower mean latency: %.0f vs %.0f us",
			large.MeanLatUs, small.MeanLatUs)
	}
}

func TestPropagationReachesEveryOSD(t *testing.T) {
	// Figure 8: every interface update becomes live on every OSD, and
	// the tail latency stays bounded.
	ctx := context.Background()
	res, err := RunPropagation(ctx, PropagationConfig{
		OSDs: 12, Updates: 8,
		ProposalInterval: 10 * time.Millisecond,
		GossipInterval:   10 * time.Millisecond,
		GossipFanout:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Latency.Count(); got != 12*8 {
		t.Fatalf("latency samples = %d, want %d", got, 12*8)
	}
	p99 := res.Latency.Percentile(99)
	t.Logf("propagation: %s", res.Latency.Summary("us"))
	if p99 > 5e6 {
		t.Fatalf("P99 propagation = %.0fus — gossip is stuck", p99)
	}
}

func TestProposalIntervalAffectsCommitLatency(t *testing.T) {
	// §6.1.2: the Paxos proposal interval bounds commit latency (1 s
	// default vs 222 ms tuned in the paper).
	ctx := context.Background()
	slow, err := RunPropagation(ctx, PropagationConfig{
		OSDs: 4, Updates: 6, ProposalInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunPropagation(ctx, PropagationConfig{
		OSDs: 4, Updates: 6, ProposalInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("commit latency: slow=%.0fus fast=%.0fus", slow.CommitLatency.Mean(), fast.CommitLatency.Mean())
	if fast.CommitLatency.Mean() >= slow.CommitLatency.Mean() {
		t.Fatal("shorter proposal interval must reduce commit latency")
	}
}

func TestBalancingBeatsNoBalancing(t *testing.T) {
	// Figure 9: migrating sequencers off the overloaded rank raises
	// cluster throughput; the custom Mantle policy does best.
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	ctx := context.Background()
	none, err := RunBalanceExperiment(ctx, BalanceConfig{Kind: BalNone, Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	mantleRes, err := RunBalanceExperiment(ctx, BalanceConfig{
		Kind: BalMantle, Duration: 4 * time.Second, Tick: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("none=%.0f ops/s, mantle=%.0f ops/s", none.SteadyRate, mantleRes.SteadyRate)
	if mantleRes.SteadyRate < none.SteadyRate*1.1 {
		t.Fatalf("mantle (%.0f) did not beat no-balancing (%.0f)",
			mantleRes.SteadyRate, none.SteadyRate)
	}
}

func TestProxyModeBeatsClientMode(t *testing.T) {
	// Figures 10b/12: full proxy-mode migration outperforms client mode
	// on the read-heavy sequencer workload.
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	ctx := context.Background()
	proxy, client := mds.ModeProxy, mds.ModeClient
	run := func(mode *mds.MigrationMode) float64 {
		res, err := RunBalanceExperiment(ctx, BalanceConfig{
			Kind: BalNone, MDSs: 2, Sequencers: 2, ClientsPerSeq: 4,
			Duration: 3500 * time.Millisecond, ManualMode: mode,
			ManualMigrateAt: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SteadyRate
	}
	p := run(&proxy)
	c := run(&client)
	t.Logf("proxy-full=%.0f ops/s, client-full=%.0f ops/s", p, c)
	if p <= c {
		t.Fatalf("proxy mode (%.0f) must beat client mode (%.0f)", p, c)
	}
}

func TestBalanceValuesAreExact(t *testing.T) {
	// Correctness under migration: the run's total op count matches the
	// sum of the sequencer values — no position lost or duplicated while
	// inodes moved between ranks.
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	ctx := context.Background()
	res, err := RunBalanceExperiment(ctx, BalanceConfig{
		Kind: BalCephFSWorkload, Duration: 3 * time.Second, Tick: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations")
	}
}
