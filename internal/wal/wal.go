// Package wal implements the segmented append-only write-ahead log
// under the durable OSD backend. Records are CRC-framed
// ([u32 len][u32 crc][payload], little-endian, Castagnoli CRC over the
// payload), segments rotate at a size threshold, and a checkpoint file
// bounds replay: on open the log scans segments in order, truncates a
// torn tail in the final segment (a crash mid-write), and resumes
// appending after the last valid frame. Group commit batches fsyncs:
// concurrent committers ride one leader's fsync instead of serializing
// a disk flush each (the sync-leader pattern).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	frameHeaderSize = 8       // u32 len + u32 crc
	maxRecordSize   = 1 << 26 // 64 MiB; a larger length prefix is corruption
	segPrefix       = "seg-"
	segSuffix       = ".wal"
	checkpointName  = "checkpoint"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed or abandoned log.
var ErrClosed = errors.New("wal: log closed")

// Options tune a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 4 MiB).
	SegmentSize int64
	// NoSync skips fsync on Sync/rotation/checkpoint. For benchmarks
	// and tests that measure framing cost, not disk latency.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	return o
}

type segInfo struct {
	base uint64 // LSN of the segment's first record
	path string
}

// Log is a segmented write-ahead log. LSNs start at 1 and are implicit:
// record N of the log (in segment order) has LSN N. The checkpoint file
// stores an application snapshot plus the LSN it covers; replay visits
// only records past it.
//
// Lock order: syncMu before mu (Sync takes both; everything else takes
// only mu).
type Log struct {
	dir  string
	opts Options

	mu            sync.Mutex
	cur           *os.File      // guarded by mu; current segment, append-only
	curBuf        *bufio.Writer // guarded by mu
	curBase       uint64        // guarded by mu; first LSN of cur
	curSize       int64         // guarded by mu; bytes in cur incl. buffered
	nextLSN       uint64        // guarded by mu; LSN the next Append gets
	appended      uint64        // guarded by mu; last LSN handed out
	segs          []segInfo     // guarded by mu; all segments, ascending base
	checkpointLSN uint64        // guarded by mu; records <= this are covered
	tail          int64         // guarded by mu; bytes appended since last checkpoint
	dead          bool          // guarded by mu; Abandon/Close called
	recErr        error         // guarded by mu; sticky write error

	syncMu sync.Mutex
	synced uint64 // guarded by syncMu; highest LSN known flushed+fsynced

	syncs     atomic.Uint64 // fsync-batch count, for tests and benches
	tornBytes int64         // set once at Open; bytes truncated from a torn tail
}

// Open opens (creating if needed) the log in dir, scans its segments,
// truncates a torn tail in the final segment, and positions the log for
// appending after the last valid record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: dir, opts: opts}

	_, upTo, ok, err := l.LoadCheckpoint()
	if err != nil {
		return nil, err
	}
	if ok {
		l.checkpointLSN = upTo
	}

	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	lsn := uint64(0)
	for i, name := range names {
		path := filepath.Join(dir, name)
		base, perr := parseSegBase(name)
		if perr != nil {
			return nil, perr
		}
		n, torn, serr := scanSegment(path, i == len(names)-1)
		if serr != nil {
			return nil, serr
		}
		l.tornBytes += torn
		l.segs = append(l.segs, segInfo{base: base, path: path})
		if n > 0 {
			lsn = base + uint64(n) - 1
		}
	}
	reuseLast := len(l.segs) > 0
	if lsn < l.checkpointLSN {
		// The checkpoint is ahead of every surviving record: appending
		// into the old segment would break the implicit base+index LSN
		// numbering, so start a fresh segment on the next Append.
		lsn = l.checkpointLSN
		reuseLast = false
	}
	l.nextLSN = lsn + 1
	l.appended = lsn
	l.synced = lsn // everything on disk at open is by definition synced

	// Reopen the last segment for append, if its numbering continues.
	if reuseLast {
		last := l.segs[len(l.segs)-1]
		f, oerr := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return nil, fmt.Errorf("wal: reopen segment: %w", oerr)
		}
		st, serr := f.Stat()
		if serr != nil {
			f.Close() //nolint:errcheck
			return nil, fmt.Errorf("wal: stat segment: %w", serr)
		}
		l.cur = f
		l.curBuf = bufio.NewWriterSize(f, 1<<16)
		l.curBase = last.base
		l.curSize = st.Size()
	}
	return l, nil
}

// segmentNames lists the segment files in dir in ascending base order.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if len(n) == len(segPrefix)+16+len(segSuffix) &&
			n[:len(segPrefix)] == segPrefix && n[len(n)-len(segSuffix):] == segSuffix {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func parseSegBase(name string) (uint64, error) {
	var base uint64
	if _, err := fmt.Sscanf(name, segPrefix+"%016x"+segSuffix, &base); err != nil {
		return 0, fmt.Errorf("wal: bad segment name %q: %w", name, err)
	}
	return base, nil
}

func segName(base uint64) string {
	return fmt.Sprintf(segPrefix+"%016x"+segSuffix, base)
}

// scanSegment validates the frames of one segment, returning the count
// of valid records. For the last segment a bad or short trailing frame
// is a torn tail: the file is truncated at the last valid frame and the
// dropped byte count returned. Anywhere else it is hard corruption.
func scanSegment(path string, last bool) (records int, torn int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close() //nolint:errcheck
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	size := st.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [frameHeaderSize]byte
	var buf []byte
	for off < size {
		good, n := readFrame(r, size-off, &hdr, &buf)
		if !good {
			if !last {
				return 0, 0, fmt.Errorf("wal: corrupt frame at %s:%d", path, off)
			}
			torn = size - off
			if terr := f.Truncate(off); terr != nil {
				return 0, 0, fmt.Errorf("wal: truncate torn tail: %w", terr)
			}
			if serr := f.Sync(); serr != nil {
				return 0, 0, fmt.Errorf("wal: sync after truncate: %w", serr)
			}
			return records, torn, nil
		}
		off += n
		records++
	}
	return records, 0, nil
}

// readFrame reads one frame from r, with at most avail bytes remaining.
// Returns ok=false on a short, oversized, or CRC-failing frame, and the
// byte length consumed on success. *buf is a reusable scratch buffer.
func readFrame(r *bufio.Reader, avail int64, hdr *[frameHeaderSize]byte, buf *[]byte) (ok bool, n int64) {
	if avail < frameHeaderSize {
		return false, 0
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return false, 0
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if ln > maxRecordSize || int64(ln) > avail-frameHeaderSize {
		return false, 0
	}
	if cap(*buf) < int(ln) {
		*buf = make([]byte, ln)
	}
	payload := (*buf)[:ln]
	if _, err := io.ReadFull(r, payload); err != nil {
		return false, 0
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return false, 0
	}
	return true, frameHeaderSize + int64(ln)
}

// Append frames and buffers one record, returning its LSN. The record
// is not durable until a Sync (or Close) covering its LSN returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: record too large (%d bytes)", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, ErrClosed
	}
	if l.recErr != nil {
		return 0, l.recErr
	}
	if l.cur == nil || l.curSize >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.recErr = err
			return 0, err
		}
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.curBuf.Write(hdr[:]); err != nil {
		l.recErr = fmt.Errorf("wal: append: %w", err)
		return 0, l.recErr
	}
	if _, err := l.curBuf.Write(payload); err != nil {
		l.recErr = fmt.Errorf("wal: append: %w", err)
		return 0, l.recErr
	}
	n := int64(frameHeaderSize + len(payload))
	l.curSize += n
	l.tail += n
	lsn := l.nextLSN
	l.nextLSN++
	l.appended = lsn
	return lsn, nil
}

// rotateLocked flushes and fsyncs the current segment (if any) and
// starts a new one whose base is the next LSN. Caller holds l.mu.
// Rotation is rare (once per SegmentSize bytes), so holding mu across
// the fsync is acceptable.
func (l *Log) rotateLocked() error {
	if l.cur != nil {
		if err := l.curBuf.Flush(); err != nil {
			return fmt.Errorf("wal: rotate flush: %w", err)
		}
		if !l.opts.NoSync {
			if err := l.cur.Sync(); err != nil {
				return fmt.Errorf("wal: rotate sync: %w", err)
			}
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: rotate close: %w", err)
		}
	}
	base := l.nextLSN
	path := filepath.Join(l.dir, segName(base))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.cur = f
	l.curBuf = bufio.NewWriterSize(f, 1<<16)
	l.curBase = base
	l.curSize = 0
	l.segs = append(l.segs, segInfo{base: base, path: path})
	return nil
}

// Sync makes every record appended before the call durable. Concurrent
// callers batch: one leader flushes and fsyncs while the rest wait on
// syncMu and return immediately once their records are covered — that
// is the group commit.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.recErr != nil {
		err := l.recErr
		l.mu.Unlock()
		return err
	}
	target := l.appended
	l.mu.Unlock()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= target {
		return nil // a concurrent leader's fsync already covered us
	}

	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.recErr != nil {
		err := l.recErr
		l.mu.Unlock()
		return err
	}
	flushed := l.appended
	var err error
	if l.curBuf != nil {
		err = l.curBuf.Flush()
		if err != nil {
			l.recErr = fmt.Errorf("wal: sync flush: %w", err)
			err = l.recErr
		}
	}
	f := l.cur
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if f != nil && !l.opts.NoSync {
		if serr := f.Sync(); serr != nil {
			l.mu.Lock()
			l.recErr = fmt.Errorf("wal: fsync: %w", serr)
			err = l.recErr
			l.mu.Unlock()
			return err
		}
	}
	l.synced = flushed
	l.syncs.Add(1)
	return nil
}

// Syncs reports how many fsync batches have run (for group-commit
// tests and benches).
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Appended returns the LSN of the most recently appended record (0 if
// none).
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// TornBytes reports how many bytes of torn tail Open truncated.
func (l *Log) TornBytes() int64 { return l.tornBytes }

// TailBytes reports bytes appended since the last checkpoint — the
// replay debt a checkpoint would retire.
func (l *Log) TailBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// CheckpointLSN returns the LSN covered by the last checkpoint.
func (l *Log) CheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLSN
}

// Checkpoint durably stores an application snapshot covering records up
// to and including upTo, then prunes fully-covered segments. The
// snapshot is written to a temp file, fsynced, renamed over the
// checkpoint file, and the directory fsynced — crash-atomic.
func (l *Log) Checkpoint(state []byte, upTo uint64) error {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()

	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, upTo)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(state)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(state, castagnoli))
	buf = append(buf, state...)

	tmp := filepath.Join(l.dir, checkpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //nolint:errcheck
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("wal: checkpoint sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if !l.opts.NoSync {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo > l.checkpointLSN {
		l.checkpointLSN = upTo
	}
	l.tail = 0
	// Prune segments fully covered by the checkpoint: a segment is
	// removable when the NEXT segment's base is still <= upTo+1 (every
	// record in it is covered) and it is not the current segment.
	kept := l.segs[:0]
	for i, s := range l.segs {
		covered := i+1 < len(l.segs) && l.segs[i+1].base <= l.checkpointLSN+1
		if covered && s.path != l.curPathLocked() {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: prune segment: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return nil
}

func (l *Log) curPathLocked() string {
	if l.cur == nil {
		return ""
	}
	return filepath.Join(l.dir, segName(l.curBase))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close() //nolint:errcheck
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the checkpoint file. ok is false when no
// checkpoint exists; a corrupt checkpoint is an error (it was written
// crash-atomically, so corruption is not a torn write to tolerate).
func (l *Log) LoadCheckpoint() (state []byte, upTo uint64, ok bool, err error) {
	buf, rerr := os.ReadFile(filepath.Join(l.dir, checkpointName))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("wal: read checkpoint: %w", rerr)
	}
	if len(buf) < 16 {
		return nil, 0, false, errors.New("wal: checkpoint too short")
	}
	upTo = binary.LittleEndian.Uint64(buf[0:8])
	ln := binary.LittleEndian.Uint32(buf[8:12])
	crc := binary.LittleEndian.Uint32(buf[12:16])
	if int(ln) != len(buf)-16 {
		return nil, 0, false, errors.New("wal: checkpoint length mismatch")
	}
	state = buf[16:]
	if crc32.Checksum(state, castagnoli) != crc {
		return nil, 0, false, errors.New("wal: checkpoint crc mismatch")
	}
	return state, upTo, true, nil
}

// Replay calls fn for every record past the checkpoint, in LSN order.
// Buffered appends are flushed first so the caller sees its own writes.
func (l *Log) Replay(fn func(lsn uint64, rec []byte) error) error {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.curBuf != nil {
		if err := l.curBuf.Flush(); err != nil {
			l.recErr = fmt.Errorf("wal: replay flush: %w", err)
			err = l.recErr
			l.mu.Unlock()
			return err
		}
	}
	segs := append([]segInfo(nil), l.segs...)
	ckpt := l.checkpointLSN
	l.mu.Unlock()

	for _, s := range segs {
		if err := replaySegment(s, ckpt, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s segInfo, ckpt uint64, fn func(lsn uint64, rec []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close() //nolint:errcheck
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: replay stat: %w", err)
	}
	size := st.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [frameHeaderSize]byte
	var buf []byte
	lsn := s.base
	for off < size {
		good, n := readFrame(r, size-off, &hdr, &buf)
		if !good {
			return fmt.Errorf("wal: corrupt frame during replay at %s:%d", s.path, off)
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		if lsn > ckpt {
			if err := fn(lsn, buf[:ln]); err != nil {
				return err
			}
		}
		off += n
		lsn++
	}
	return nil
}

// Abandon simulates a kill -9: buffered (unflushed) appends are
// dropped, and with tear it writes a deliberately invalid partial frame
// straight to the segment fd — the torn tail a crash mid-pwrite leaves.
// The log is dead afterwards; reopen the directory to recover.
func (l *Log) Abandon(tear bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return
	}
	l.dead = true
	// Drop the bufio buffer on the floor: those appends were never
	// flushed, exactly like pages a killed process never wrote.
	l.curBuf = nil
	if l.cur != nil {
		if tear {
			// A frame header promising 1 MiB with a junk CRC, followed by
			// a few garbage bytes and then EOF: unambiguously torn.
			var junk [frameHeaderSize + 7]byte
			binary.LittleEndian.PutUint32(junk[0:4], 1<<20)
			binary.LittleEndian.PutUint32(junk[4:8], 0xdeadbeef)
			copy(junk[8:], "garbage")
			l.cur.Write(junk[:]) //nolint:errcheck // simulating a crash; nothing to do on error
		}
		l.cur.Close() //nolint:errcheck // simulating a crash
		l.cur = nil
	}
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return nil
	}
	l.dead = true
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: close: %w", err)
		}
		l.cur = nil
	}
	l.curBuf = nil
	return nil
}
