package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%04d", tag, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func collect(t *testing.T, l *Log) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	err := l.Replay(func(lsn uint64, rec []byte) error {
		out[lsn] = string(rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 10, "rec")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, l)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		lsn := uint64(i + 1)
		want := fmt.Sprintf("rec-%04d", i)
		if got[lsn] != want {
			t.Fatalf("lsn %d = %q, want %q", lsn, got[lsn], want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh open sees the same records.
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close() //nolint:errcheck
	got2 := collect(t, l2)
	if len(got2) != 10 {
		t.Fatalf("reopened replay %d records, want 10", len(got2))
	}
	if l2.Appended() != 10 {
		t.Fatalf("Appended() = %d, want 10", l2.Appended())
	}
}

func TestEmptyPayloadAllowed(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close() //nolint:errcheck
	got := collect(t, l2)
	if v, ok := got[1]; !ok || v != "" {
		t.Fatalf("empty record lost: %v", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	appendN(t, l, 20, "rot") // each frame is 8+8 = 16 bytes, 4 per segment
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatalf("segmentNames: %v", err)
	}
	if len(names) < 3 {
		t.Fatalf("expected >=3 segments after rotation, got %d: %v", len(names), names)
	}
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close() //nolint:errcheck
	got := collect(t, l2)
	if len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
	// Appends continue with the right numbering after reopen.
	lsn, err := l2.Append([]byte("after"))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if lsn != 21 {
		t.Fatalf("post-reopen LSN = %d, want 21", lsn)
	}
}

func TestCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	appendN(t, l, 12, "ck")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Checkpoint([]byte("snapshot@8"), 8); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if l.TailBytes() != 0 {
		t.Fatalf("TailBytes after checkpoint = %d, want 0", l.TailBytes())
	}
	// Segments fully covered by LSN 8 must be gone.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatalf("segmentNames: %v", err)
	}
	if len(names) >= 3 {
		t.Fatalf("covered segments not pruned: %v", names)
	}
	got := collect(t, l)
	for lsn := range got {
		if lsn <= 8 {
			t.Fatalf("replay visited checkpointed lsn %d", lsn)
		}
	}
	for lsn := uint64(9); lsn <= 12; lsn++ {
		if _, ok := got[lsn]; !ok {
			t.Fatalf("replay missing post-checkpoint lsn %d", lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: checkpoint state survives, replay still starts past it.
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close() //nolint:errcheck
	state, upTo, ok, err := l2.LoadCheckpoint()
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if string(state) != "snapshot@8" || upTo != 8 {
		t.Fatalf("checkpoint = (%q, %d), want (snapshot@8, 8)", state, upTo)
	}
	got2 := collect(t, l2)
	if len(got2) != 4 {
		t.Fatalf("reopened replay %d records, want 4", len(got2))
	}
}

func TestCheckpointAheadOfSegmentsStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 5, "cp")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Checkpoint covering everything: the single live segment is kept
	// (it is current) but all of its records are covered.
	if err := l.Checkpoint([]byte("all"), 5); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{})
	lsn, err := l2.Append([]byte("next"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if lsn != 6 {
		t.Fatalf("post-checkpoint LSN = %d, want 6", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l3 := mustOpen(t, dir, Options{})
	defer l3.Close() //nolint:errcheck
	got := collect(t, l3)
	if len(got) != 1 || got[6] != "next" {
		t.Fatalf("replay = %v, want {6: next}", got)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	appendN(t, l, 100, "gc")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if n := l.Syncs(); n != 1 {
		t.Fatalf("100 appends + one Sync ran %d fsync batches, want 1", n)
	}
	// A Sync with nothing new is free.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if n := l.Syncs(); n != 1 {
		t.Fatalf("no-op Sync ran an fsync batch (total %d)", n)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	const writers = 8
	const per = 50
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := l.Sync(); err != nil {
					t.Errorf("Sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := uint64(writers * per)
	if l.Appended() != total {
		t.Fatalf("Appended = %d, want %d", l.Appended(), total)
	}
	if n := l.Syncs(); n > total {
		t.Fatalf("fsync batches (%d) exceed appends (%d): group commit broken", n, total)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close() //nolint:errcheck
	if got := collect(t, l2); len(got) != int(total) {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
}

func TestAbandonDropsUnflushed(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 5, "durable")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	appendN(t, l, 5, "volatile") // never synced
	l.Abandon(true)
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Abandon = %v, want ErrClosed", err)
	}

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close() //nolint:errcheck
	if l2.TornBytes() == 0 {
		t.Fatalf("Abandon(tear) left no torn tail")
	}
	got := collect(t, l2)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after crash, want the 5 synced", len(got))
	}
	for lsn, v := range got {
		if lsn > 5 || v[:7] != "durable" {
			t.Fatalf("unsynced record leaked through crash: %d=%q", lsn, v)
		}
	}
	// The log keeps working after recovery.
	lsn, err := l2.Append([]byte("resumed"))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if lsn != 6 {
		t.Fatalf("post-recovery LSN = %d, want 6", lsn)
	}
}

// TestTornWriteCorpus pins the on-disk format: CRC + length-prefix
// framing. It builds a clean log, then for every truncation length
// inside the final record and every single-byte flip inside the final
// record it asserts replay stops cleanly at the last valid frame — all
// prior records intact, no partial apply, and the log reopens writable.
func TestTornWriteCorpus(t *testing.T) {
	build := func(t *testing.T, dir string) (segPath string, lastFrameOff int64) {
		l := mustOpen(t, dir, Options{})
		appendN(t, l, 4, "base")
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		names, err := segmentNames(dir)
		if err != nil || len(names) != 1 {
			t.Fatalf("segmentNames: %v %v", names, err)
		}
		segPath = filepath.Join(dir, names[0])
		// Each frame: 8 hdr + len("base-0000")=9 payload = 17 bytes.
		return segPath, 3 * 17
	}

	check := func(t *testing.T, dir string, wantTorn bool) {
		t.Helper()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after corruption: %v", err)
		}
		defer l.Close() //nolint:errcheck
		if wantTorn && l.TornBytes() == 0 {
			t.Fatalf("expected torn bytes, got none")
		}
		got := collect(t, l)
		if len(got) != 3 {
			t.Fatalf("replayed %d records, want exactly the 3 intact", len(got))
		}
		for i := 0; i < 3; i++ {
			want := fmt.Sprintf("base-%04d", i)
			if got[uint64(i+1)] != want {
				t.Fatalf("record %d corrupted to %q", i+1, got[uint64(i+1)])
			}
		}
		// No partial apply: the torn record must not surface at all.
		if _, ok := got[4]; ok {
			t.Fatalf("torn record partially applied: %q", got[4])
		}
		// The recovered log accepts appends at the truncated position.
		lsn, err := l.Append([]byte("fresh"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if lsn != 4 {
			t.Fatalf("post-recovery LSN = %d, want 4", lsn)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync after recovery: %v", err)
		}
	}

	t.Run("truncate-every-offset", func(t *testing.T) {
		refDir := t.TempDir()
		segPath, lastOff := build(t, refDir)
		full, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		// Every length that cuts inside the final record, including
		// cutting the header itself.
		for cut := lastOff; cut < int64(len(full)); cut++ {
			dir := t.TempDir()
			p := filepath.Join(dir, filepath.Base(segPath))
			if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
				t.Fatalf("write truncated copy: %v", err)
			}
			check(t, dir, cut > lastOff)
		}
	})

	t.Run("flip-every-byte", func(t *testing.T) {
		refDir := t.TempDir()
		segPath, lastOff := build(t, refDir)
		full, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		for pos := lastOff; pos < int64(len(full)); pos++ {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 0xff
			// A flipped length byte may promise more data than the file
			// holds, a flipped CRC/payload byte fails the checksum —
			// either way the frame is invalid and must be dropped.
			dir := t.TempDir()
			p := filepath.Join(dir, filepath.Base(segPath))
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatalf("write mutated copy: %v", err)
			}
			check(t, dir, true)
		}
	})

	t.Run("mid-segment-corruption-is-hard-error", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{SegmentSize: 40})
		appendN(t, l, 6, "mid") // frames of 16 bytes; rotation keeps several segments
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		names, err := segmentNames(dir)
		if err != nil || len(names) < 2 {
			t.Fatalf("want >=2 segments, got %v (%v)", names, err)
		}
		first := filepath.Join(dir, names[0])
		buf, err := os.ReadFile(first)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		buf[len(buf)-1] ^= 0xff
		if err := os.WriteFile(first, buf, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := Open(dir, Options{SegmentSize: 40}); err == nil {
			t.Fatalf("Open tolerated corruption in a non-final segment")
		}
	})
}

// TestFrameFormatPinned locks the on-disk layout: little-endian u32
// length, little-endian u32 Castagnoli CRC over the payload, payload.
func TestFrameFormatPinned(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	payload := []byte("pinned-format")
	if _, err := l.Append(payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, _ := segmentNames(dir)
	raw, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var want []byte
	want = binary.LittleEndian.AppendUint32(want, uint32(len(payload)))
	want = binary.LittleEndian.AppendUint32(want, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	want = append(want, payload...)
	if !bytes.Equal(raw, want) {
		t.Fatalf("on-disk frame = %x, want %x", raw, want)
	}
	if names[0] != "seg-0000000000000001.wal" {
		t.Fatalf("segment name = %q, want seg-0000000000000001.wal", names[0])
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	if _, err := l.Append(make([]byte, maxRecordSize+1)); err == nil {
		t.Fatalf("oversized append accepted")
	}
	// The rejection is not sticky.
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
}

func TestClosedLogOperationsFail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 2, "pre")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); err != ErrClosed {
		t.Fatalf("Replay after Close = %v, want ErrClosed", err)
	}
	if err := l.Checkpoint([]byte("state"), 2); err != ErrClosed {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	// Abandon after Close is a no-op, and Close after Abandon is nil:
	// every shutdown interleaving converges on the same dead state.
	l.Abandon(true)
	if err := l.Close(); err != nil {
		t.Fatalf("Close after Abandon = %v, want nil", err)
	}
}

func TestSyncFollowerSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	appendN(t, l, 3, "gc")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	before := l.Syncs()
	// Nothing new appended: the second Sync must take the follower exit
	// (records already covered) without another fsync batch.
	if err := l.Sync(); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if got := l.Syncs(); got != before {
		t.Fatalf("redundant Sync ran an fsync batch: %d -> %d", before, got)
	}
}

func TestCheckpointLSNReported(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if got := l.CheckpointLSN(); got != 0 {
		t.Fatalf("fresh CheckpointLSN = %d, want 0", got)
	}
	appendN(t, l, 5, "ck")
	if err := l.Checkpoint([]byte("snap"), 5); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := l.CheckpointLSN(); got != 5 {
		t.Fatalf("CheckpointLSN = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close() //nolint:errcheck
	if got := l2.CheckpointLSN(); got != 5 {
		t.Fatalf("reopened CheckpointLSN = %d, want 5", got)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	appendN(t, l, 3, "err")
	sentinel := fmt.Errorf("apply exploded")
	err := l.Replay(func(lsn uint64, rec []byte) error {
		if lsn == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("Replay = %v, want the callback's error", err)
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	// The checkpoint is written crash-atomically (tmp+fsync+rename), so
	// unlike a segment tail, corruption is an error, never a truncation.
	cases := map[string]func(valid []byte) []byte{
		"too-short":       func([]byte) []byte { return []byte{1, 2, 3} },
		"length-mismatch": func(valid []byte) []byte { return append(valid, 0xff) },
		"crc-mismatch": func(valid []byte) []byte {
			bad := append([]byte(nil), valid...)
			bad[len(bad)-1] ^= 0xff
			return bad
		},
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendN(t, l, 2, "ck")
			if err := l.Checkpoint([]byte("snapshot-state"), 2); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			path := filepath.Join(dir, checkpointName)
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read checkpoint: %v", err)
			}
			if err := os.WriteFile(path, mangle(valid), 0o644); err != nil {
				t.Fatalf("write checkpoint: %v", err)
			}
			if _, err := Open(dir, Options{}); err == nil {
				t.Fatalf("Open accepted a %s checkpoint", name)
			}
		})
	}
}

func TestBogusSegmentNameRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-zzzzzzzzzzzzzzzz.wal"), nil, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open accepted a segment with an unparseable base LSN")
	}
}

func TestCorruptNonFinalSegmentIsError(t *testing.T) {
	// Only the final segment may be torn (a crash mid-write). A bad
	// frame in an earlier segment means real corruption and must refuse
	// to open rather than silently truncate acked history.
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	appendN(t, l, 20, "mid") // rotates several times
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := segmentNames(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("want >= 2 segments, got %v (%v)", names, err)
	}
	first := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[frameHeaderSize] ^= 0xff // flip a payload byte: CRC mismatch
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{SegmentSize: 64}); err == nil {
		t.Fatalf("Open accepted a corrupt non-final segment")
	}
}

func TestSegmentCreateFailureIsSticky(t *testing.T) {
	// Pre-create the file the first rotation will claim: O_EXCL makes
	// the create fail, and the write error must stick — every later
	// Append and Sync reports it rather than silently losing records.
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("squatter"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := l.Append([]byte("first")); err == nil {
		t.Fatalf("Append created over an existing segment file")
	}
	if _, err := l.Append([]byte("second")); err == nil {
		t.Fatalf("Append after a write error succeeded; the error must stick")
	}
	if err := l.Sync(); err == nil {
		t.Fatalf("Sync after a write error succeeded; the error must stick")
	}
}

func TestCheckpointTmpCollisionFails(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close() //nolint:errcheck
	appendN(t, l, 2, "ck")
	// A directory squatting on the tmp path: the create fails and the
	// old checkpoint (none here) stays untouched.
	if err := os.Mkdir(filepath.Join(dir, checkpointName+".tmp"), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := l.Checkpoint([]byte("state"), 2); err == nil {
		t.Fatalf("Checkpoint wrote through a squatting directory")
	}
	if got := l.CheckpointLSN(); got != 0 {
		t.Fatalf("failed Checkpoint advanced CheckpointLSN to %d", got)
	}
}

func TestCheckpointPruneWithNoOpenSegment(t *testing.T) {
	// Reopen in the checkpoint-ahead state (no segment reusable, so no
	// current segment is open) and checkpoint again: the prune loop must
	// remove the fully covered segments without tripping on the absent
	// current segment.
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	appendN(t, l, 8, "old") // several segments
	if err := l.Checkpoint([]byte("snap"), 20); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close() //nolint:errcheck
	if err := l2.Checkpoint([]byte("snap2"), 20); err != nil {
		t.Fatalf("reopened Checkpoint: %v", err)
	}
	got := collect(t, l2)
	if len(got) != 0 {
		t.Fatalf("replay past an all-covering checkpoint returned %d records", len(got))
	}
}

func TestOpenDirPathIsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("file"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatalf("Open succeeded on a file path")
	}
}

func TestCheckpointAheadPrunesCoveredSegments(t *testing.T) {
	// Two on-disk segments, both wholly behind the checkpoint, and no
	// current segment open (the checkpoint-ahead reopen state): a new
	// checkpoint must prune the covered one without a segment to spare.
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	appendN(t, l, 8, "old")
	if err := l.Checkpoint([]byte("snap"), 20); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := segmentNames(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("want 1 surviving segment, got %v (%v)", names, err)
	}
	// Clone the survivor under the next base so the reopen sees two
	// segments with consistent implicit numbering.
	raw, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	base, err := parseSegBase(names[0])
	if err != nil {
		t.Fatalf("parseSegBase: %v", err)
	}
	records := int64(len(raw)) / 16 // 8-byte header + 8-byte payload each
	next := segName(base + uint64(records))
	if err := os.WriteFile(filepath.Join(dir, next), raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close() //nolint:errcheck
	if err := l2.Checkpoint([]byte("snap2"), 20); err != nil {
		t.Fatalf("reopened Checkpoint: %v", err)
	}
	names, err = segmentNames(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("covered segment not pruned: %v (%v)", names, err)
	}
	if got := collect(t, l2); len(got) != 0 {
		t.Fatalf("replay past an all-covering checkpoint returned %d records", len(got))
	}
}
