package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkWALAppend measures durable appends/sec at increasing commit
// concurrency. Every append is individually committed (Append+Sync),
// so batch1 pays one fsync per record while batch64 lets the group
// commit amortize one fsync over many waiters — the ≥3× speedup at
// batch 64 is an acceptance criterion pinned by bench-compare
// (wal_group_commit_speedup in BENCH_pr10.json).
func BenchmarkWALAppend(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{SegmentSize: 64 << 20})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer l.Close() //nolint:errcheck
			payload := make([]byte, 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(batch)
			for w := 0; w < batch; w++ {
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := l.Append(payload); err != nil {
							b.Error(err)
							return
						}
						if err := l.Sync(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkWALReplay measures recovery throughput: open a prebuilt log
// and replay every record. The MB/s metric is pinned as wal_replay_mbps
// in BENCH_pr10.json.
func BenchmarkWALReplay(b *testing.B) {
	const records = 4096
	const recSize = 1024
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	payload := make([]byte, recSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}
	b.SetBytes(records * recSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := Open(dir, Options{})
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		n := 0
		var bytes int64
		err = rl.Replay(func(lsn uint64, rec []byte) error {
			n++
			bytes += int64(len(rec))
			return nil
		})
		if err != nil {
			b.Fatalf("Replay: %v", err)
		}
		if n != records || bytes != records*recSize {
			b.Fatalf("replayed %d records / %d bytes, want %d / %d", n, bytes, records, records*recSize)
		}
		if err := rl.Close(); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}
}
