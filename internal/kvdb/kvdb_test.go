package kvdb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvdb"
	"repro/internal/mds"
	"repro/internal/wire"
)

func boot(t *testing.T) *core.Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := core.Boot(ctx, core.Options{
		MDSs: 1, OSDs: 3, Pools: []string{"db"}, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func openDB(t *testing.T, c *core.Cluster, client, name string) *kvdb.DB {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	db, err := kvdb.Open(ctx, c.Net, wire.Addr(client), c.MonIDs(), kvdb.Options{
		Name: name, Pool: "db",
		SeqPolicy: mds.CapPolicy{Cacheable: true, Quota: 64, Delay: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestPutGetDelete(t *testing.T) {
	c := boot(t)
	db := openDB(t, c, "client.1", "t1")
	ctx := ctxT(t, 20*time.Second)

	if err := db.Put(ctx, "color", "teal"); err != nil {
		t.Fatal(err)
	}
	v, ver, ok, err := db.Get(ctx, "color")
	if err != nil || !ok || v != "teal" || ver != 1 {
		t.Fatalf("get = %q v%d ok=%v err=%v", v, ver, ok, err)
	}
	if err := db.Put(ctx, "color", "plum"); err != nil {
		t.Fatal(err)
	}
	v, ver, _, _ = db.Get(ctx, "color")
	if v != "plum" || ver != 2 {
		t.Fatalf("after overwrite: %q v%d", v, ver)
	}
	if err := db.Delete(ctx, "color"); err != nil {
		t.Fatal(err)
	}
	_, _, ok, _ = db.Get(ctx, "color")
	if ok {
		t.Fatal("key survives delete")
	}
}

func TestTwoNodesConverge(t *testing.T) {
	c := boot(t)
	a := openDB(t, c, "client.a", "t2")
	b := openDB(t, c, "client.b", "t2")
	ctx := ctxT(t, 20*time.Second)

	if err := a.Put(ctx, "k1", "from-a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, "k2", "from-b"); err != nil {
		t.Fatal(err)
	}
	// Each node reads the other's write through the shared log.
	v, _, ok, err := b.Get(ctx, "k1")
	if err != nil || !ok || v != "from-a" {
		t.Fatalf("b.Get(k1) = %q ok=%v err=%v", v, ok, err)
	}
	v, _, ok, err = a.Get(ctx, "k2")
	if err != nil || !ok || v != "from-b" {
		t.Fatalf("a.Get(k2) = %q ok=%v err=%v", v, ok, err)
	}
}

func TestElasticAttach(t *testing.T) {
	c := boot(t)
	a := openDB(t, c, "client.a", "t3")
	ctx := ctxT(t, 20*time.Second)

	for i := 0; i < 20; i++ {
		if err := a.Put(ctx, fmt.Sprintf("k%d", i), fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A node attached later replays history and is immediately current.
	late := openDB(t, c, "client.late", "t3")
	if late.Len() != 20 {
		t.Fatalf("late node sees %d keys, want 20", late.Len())
	}
	v, _, ok := late.GetStale("k7")
	if !ok || v != "7" {
		t.Fatalf("late k7 = %q ok=%v", v, ok)
	}
}

func TestCASResolvesIdenticallyOnAllNodes(t *testing.T) {
	c := boot(t)
	a := openDB(t, c, "client.a", "t4")
	b := openDB(t, c, "client.b", "t4")
	ctx := ctxT(t, 20*time.Second)

	if err := a.Put(ctx, "lock", "free"); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Both nodes race a CAS from version 1; exactly one wins.
	errA := a.CAS(ctx, "lock", 1, "held-by-a")
	errB := b.CAS(ctx, "lock", 1, "held-by-b")
	wins := 0
	if errA == nil {
		wins++
	} else if !errors.Is(errA, kvdb.ErrConflict) {
		t.Fatal(errA)
	}
	if errB == nil {
		wins++
	} else if !errors.Is(errB, kvdb.ErrConflict) {
		t.Fatal(errB)
	}
	if wins != 1 {
		t.Fatalf("CAS winners = %d, want exactly 1 (A=%v B=%v)", wins, errA, errB)
	}
	// Both nodes agree on the final value.
	va, _, _, _ := a.Get(ctx, "lock")
	vb, _, _, _ := b.Get(ctx, "lock")
	if va != vb {
		t.Fatalf("divergence: a=%q b=%q", va, vb)
	}
	if va != "held-by-a" && va != "held-by-b" {
		t.Fatalf("final value %q", va)
	}
}

func TestCheckpointAndTrim(t *testing.T) {
	c := boot(t)
	a := openDB(t, c, "client.a", "t5")
	ctx := ctxT(t, 30*time.Second)

	for i := 0; i < 30; i++ {
		if err := a.Put(ctx, fmt.Sprintf("k%d", i%5), fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Writes after the checkpoint.
	if err := a.Put(ctx, "post", "ckpt"); err != nil {
		t.Fatal(err)
	}
	// A new node must come up from checkpoint + suffix, despite the
	// trimmed prefix.
	late := openDB(t, c, "client.late", "t5")
	v, _, ok, err := late.Get(ctx, "post")
	if err != nil || !ok || v != "ckpt" {
		t.Fatalf("post = %q ok=%v err=%v", v, ok, err)
	}
	v, _, ok, _ = late.Get(ctx, "k4")
	if !ok || v != "29" {
		t.Fatalf("k4 = %q ok=%v (checkpointed state lost)", v, ok)
	}
	if late.Len() != 6 {
		t.Fatalf("late sees %d keys, want 6", late.Len())
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	c := boot(t)
	ctx := ctxT(t, 40*time.Second)
	const nodes, writes = 3, 20
	var dbs []*kvdb.DB
	for i := 0; i < nodes; i++ {
		dbs = append(dbs, openDB(t, c, fmt.Sprintf("client.%d", i), "t6"))
	}
	var wg sync.WaitGroup
	for i, db := range dbs {
		i, db := i, db
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < writes; j++ {
				key := fmt.Sprintf("n%d-k%d", i, j)
				if err := db.Put(ctx, key, key); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, db := range dbs {
		if err := db.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if db.Len() != nodes*writes {
			t.Fatalf("node %d sees %d keys, want %d", i, db.Len(), nodes*writes)
		}
	}
}

func TestSurvivesSequencerRecovery(t *testing.T) {
	c := boot(t)
	a := openDB(t, c, "client.a", "t7")
	ctx := ctxT(t, 30*time.Second)

	if err := a.Put(ctx, "k", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(ctx, "k", "v2"); err != nil {
		t.Fatal(err)
	}
	v, ver, _, err := a.Get(ctx, "k")
	if err != nil || v != "v2" || ver != 2 {
		t.Fatalf("after recovery: %q v%d err=%v", v, ver, err)
	}
}
