// Package kvdb is an elastic key-value database built over the ZLog
// shared log — the first of the higher-level services the paper's
// future work proposes ("an elastic cloud database", §7), in the style
// of the log-structured databases it cites (Hyder, Tango).
//
// Every mutation is an entry in one totally-ordered shared log; each
// database node materializes the log into a local map. Because the log
// is the only serialization point:
//
//   - any number of nodes can serve the same database (elasticity:
//     attach a node, it replays the log and is current);
//   - optimistic transactions (compare-and-swap on per-key versions)
//     resolve identically on every node, with no coordination beyond
//     the append;
//   - checkpoints (a snapshot object in RADOS plus a log position) let
//     new nodes skip history and let old entries be trimmed.
package kvdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/mds"
	"repro/internal/rados"
	"repro/internal/wire"
	"repro/internal/zlog"
)

// ErrConflict is returned by CAS when the expected version lost.
var ErrConflict = errors.New("kvdb: version conflict")

// record is one log entry.
type record struct {
	Op  string `json:"op"` // put | del | cas
	Key string `json:"k"`
	Val string `json:"v,omitempty"`
	// Ver is the expected per-key version for cas records.
	Ver uint64 `json:"ver,omitempty"`
}

// entry is one materialized key.
type entry struct {
	Val string `json:"v"`
	Ver uint64 `json:"ver"` // bumps on every successful mutation
}

// checkpoint is the snapshot object format.
type checkpoint struct {
	Pos   uint64           `json:"pos"` // first log position NOT covered
	State map[string]entry `json:"state"`
}

// Options configures a database handle.
type Options struct {
	Name string // database (and underlying log) name
	Pool string // RADOS pool for log entries and checkpoints
	// SeqPolicy tunes the log sequencer capability (bursty writers
	// benefit from quota batching; the default forces round-trips).
	SeqPolicy mds.CapPolicy
}

// DB is one database node.
type DB struct {
	opts Options
	log  *zlog.Log
	rc   *rados.Client

	mu      sync.Mutex
	state   map[string]entry
	applied uint64 // next log position to apply
}

func ckptObject(name string) string { return "kvdb." + name + ".ckpt" }

// Open attaches a node to the database, loading the latest checkpoint
// (if any) and replaying the log suffix.
func Open(ctx context.Context, net *wire.Network, self wire.Addr, mons []int, opts Options) (*DB, error) {
	if opts.Name == "" || opts.Pool == "" {
		return nil, fmt.Errorf("kvdb: name and pool are required")
	}
	l, err := zlog.Open(ctx, net, self, mons, zlog.Options{
		Name: "kvdb-" + opts.Name, Pool: opts.Pool, SeqPolicy: opts.SeqPolicy,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts:  opts,
		log:   l,
		rc:    rados.NewClient(net, self+".kvdb", mons),
		state: make(map[string]entry),
	}
	if err := db.rc.RefreshMap(ctx); err != nil {
		l.Close()
		return nil, err
	}
	if err := db.loadCheckpoint(ctx); err != nil {
		l.Close()
		return nil, err
	}
	if err := db.Sync(ctx); err != nil {
		l.Close()
		return nil, err
	}
	return db, nil
}

// Close releases the node's resources. The database itself lives in the
// log and checkpoints.
func (db *DB) Close() { db.log.Close() }

// loadCheckpoint installs the newest snapshot when one exists.
func (db *DB) loadCheckpoint(ctx context.Context) error {
	raw, err := db.rc.Read(ctx, db.opts.Pool, ckptObject(db.opts.Name))
	if errors.Is(err, rados.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	var ck checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return fmt.Errorf("kvdb: corrupt checkpoint: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ck.Pos > db.applied {
		db.state = ck.State
		if db.state == nil {
			db.state = make(map[string]entry)
		}
		db.applied = ck.Pos
	}
	return nil
}

// Sync replays the log up to the current tail, making subsequent reads
// reflect every append that completed before Sync started.
func (db *DB) Sync(ctx context.Context) error {
	tail, err := db.log.Tail(ctx)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for db.applied < tail {
		data, err := db.log.Read(ctx, db.applied)
		switch {
		case errors.Is(err, zlog.ErrFilled) || errors.Is(err, zlog.ErrTrimmed):
			db.applied++
			continue
		case errors.Is(err, zlog.ErrNotWritten):
			// A hole below the tail: an appender obtained the position
			// but has not written yet. Fill it so the log stays dense
			// and replicas agree it is junk (the CORFU discipline).
			db.mu.Unlock()
			ferr := db.log.Fill(ctx, db.applied)
			db.mu.Lock()
			if ferr != nil && !errors.Is(ferr, rados.ErrExists) {
				return ferr
			}
			continue // reread: either filled or won by the writer
		case err != nil:
			return err
		}
		var r record
		if jerr := json.Unmarshal(data, &r); jerr != nil {
			db.applied++ // skip alien entry
			continue
		}
		db.applyLocked(r)
		db.applied++
	}
	return nil
}

// applyLocked folds one record into the state; deterministic, so every
// node converges.
func (db *DB) applyLocked(r record) {
	switch r.Op {
	case "put":
		e := db.state[r.Key]
		db.state[r.Key] = entry{Val: r.Val, Ver: e.Ver + 1}
	case "del":
		delete(db.state, r.Key)
	case "cas":
		e, ok := db.state[r.Key]
		cur := uint64(0)
		if ok {
			cur = e.Ver
		}
		if cur == r.Ver {
			db.state[r.Key] = entry{Val: r.Val, Ver: cur + 1}
		}
		// Losing CAS records are no-ops — identically on every node.
	}
}

func (db *DB) append(ctx context.Context, r record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = db.log.Append(ctx, data)
	return err
}

// Put writes key=val.
func (db *DB) Put(ctx context.Context, key, val string) error {
	return db.append(ctx, record{Op: "put", Key: key, Val: val})
}

// Delete removes key.
func (db *DB) Delete(ctx context.Context, key string) error {
	return db.append(ctx, record{Op: "del", Key: key})
}

// Get returns the value and its version, syncing to the log tail first
// (linearizable with respect to completed writes).
func (db *DB) Get(ctx context.Context, key string) (string, uint64, bool, error) {
	if err := db.Sync(ctx); err != nil {
		return "", 0, false, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.state[key]
	return e.Val, e.Ver, ok, nil
}

// GetStale reads the node's materialized state without syncing — cheap,
// possibly stale.
func (db *DB) GetStale(key string) (string, uint64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.state[key]
	return e.Val, e.Ver, ok
}

// CAS appends a conditional write: it succeeds iff key's version still
// equals expectVer when the record is applied. The caller learns the
// outcome by syncing past its own append.
func (db *DB) CAS(ctx context.Context, key string, expectVer uint64, val string) error {
	if err := db.append(ctx, record{Op: "cas", Key: key, Ver: expectVer, Val: val}); err != nil {
		return err
	}
	if err := db.Sync(ctx); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e := db.state[key]
	if e.Ver == expectVer+1 && e.Val == val {
		return nil
	}
	// Either another writer bumped the version first, or our record
	// applied and someone overwrote after; distinguishing needs a
	// read-back of our own entry. Conservative: report conflict unless
	// the state shows exactly our write.
	return ErrConflict
}

// Len returns the number of live keys in this node's materialized view.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.state)
}

// Checkpoint snapshots the synced state into RADOS and trims the
// covered log prefix, bounding replay time for new nodes.
func (db *DB) Checkpoint(ctx context.Context) error {
	if err := db.Sync(ctx); err != nil {
		return err
	}
	db.mu.Lock()
	ck := checkpoint{Pos: db.applied, State: make(map[string]entry, len(db.state))}
	for k, v := range db.state {
		ck.State[k] = v
	}
	db.mu.Unlock()

	raw, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	if err := db.rc.WriteFull(ctx, db.opts.Pool, ckptObject(db.opts.Name), raw); err != nil {
		return err
	}
	// Trim the covered prefix; trimmed entries read as holes that Sync
	// skips, and their storage is reclaimable.
	for pos := uint64(0); pos < ck.Pos; pos++ {
		tctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := db.log.Trim(tctx, pos)
		cancel()
		if err != nil {
			return fmt.Errorf("kvdb: trim %d: %w", pos, err)
		}
	}
	return nil
}

// Recover runs the underlying log's sequencer recovery (after a
// metadata-service failure lost the sequencer state).
func (db *DB) Recover(ctx context.Context) error { return db.log.Recover(ctx) }
