package paxos

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

// newChaosCluster builds a cluster over a lossy, jittery fabric.
func newChaosCluster(t *testing.T, n int, dropRate float64, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		net: wire.NewNetwork(
			wire.WithDropRate(dropRate),
			wire.WithSeed(seed),
			wire.WithLatency(100*time.Microsecond, 400*time.Microsecond),
		),
		applied: make([][]string, n),
	}
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		tr := &wireTransport{net: c.net, self: NodeID(i), peers: peers}
		node := NewNode(tr, DefaultConfig(), func(slot uint64, v []byte) {
			c.mu.Lock()
			c.applied[i] = append(c.applied[i], fmt.Sprintf("%d=%s", slot, v))
			c.mu.Unlock()
		})
		c.nodes = append(c.nodes, node)
		c.net.Listen(addrOf(NodeID(i)), func(ctx context.Context, _ wire.Addr, req any) (any, error) {
			return node.Handle(ctx, req.(Msg))
		})
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Stop()
		}
	})
	return c
}

// proposeWithRetry drives one value to commitment through any live
// leader, tolerating drops and elections.
func proposeWithRetry(t *testing.T, c *cluster, value string, deadline time.Time) {
	t.Helper()
	for time.Now().Before(deadline) {
		for _, n := range c.nodes {
			if !n.IsLeader() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := n.Propose(ctx, []byte(value))
			cancel()
			if err == nil {
				return
			}
		}
		// Nobody leads (or the proposal failed): nudge an election.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = c.nodes[0].BecomeLeader(ctx)
		cancel()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("value %q never committed under chaos", value)
}

func TestCommitsUnderMessageLoss(t *testing.T) {
	c := newChaosCluster(t, 3, 0.10, 42)
	c.start()
	deadline := time.Now().Add(60 * time.Second)
	const vals = 10
	for i := 0; i < vals; i++ {
		proposeWithRetry(t, c, fmt.Sprintf("v%d", i), deadline)
	}
	// All nodes converge to identical logs (heartbeat catch-up fills any
	// gaps from dropped learns).
	waitFor(t, 30*time.Second, func() bool {
		for i := range c.nodes {
			if len(c.appliedOf(i)) < vals {
				return false
			}
		}
		return true
	}, "all nodes apply every value")
	ref := c.appliedOf(0)
	for i := 1; i < len(c.nodes); i++ {
		got := c.appliedOf(i)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("node %d log diverged at %d: %q vs %q", i, j, got[j], ref[j])
			}
		}
	}
}

func TestNoDivergenceUnderDuelingProposers(t *testing.T) {
	// Two nodes repeatedly seize leadership and propose; slots must
	// never hold different values on different nodes.
	c := newChaosCluster(t, 3, 0.05, 7)
	deadline := time.Now().Add(60 * time.Second)
	committed := 0
	for committed < 8 && time.Now().Before(deadline) {
		for _, idx := range []int{0, 1} {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			if err := c.nodes[idx].BecomeLeader(ctx); err == nil {
				if _, err := c.nodes[idx].Propose(ctx, []byte(fmt.Sprintf("n%d-%d", idx, committed))); err == nil {
					committed++
				}
			}
			cancel()
		}
	}
	if committed < 8 {
		t.Fatalf("only %d values committed", committed)
	}
	c.start() // let catch-up finish
	waitFor(t, 30*time.Second, func() bool {
		n := len(c.appliedOf(0))
		return n >= committed && len(c.appliedOf(1)) >= n && len(c.appliedOf(2)) >= n
	}, "logs converge")
	ref := c.appliedOf(0)
	for i := 1; i < 3; i++ {
		got := c.appliedOf(i)
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for j := 0; j < limit; j++ {
			if got[j] != ref[j] {
				t.Fatalf("divergence at slot %d: %q vs %q", j, ref[j], got[j])
			}
		}
	}
}

func TestRepeatedLeaderCrashes(t *testing.T) {
	// Crash the current leader twice (a 5-node quorum tolerates two
	// failures); each time the survivors elect a successor and the
	// committed prefix survives.
	c := newChaosCluster(t, 5, 0, 3)
	c.start()
	deadline := time.Now().Add(90 * time.Second)

	alive := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	total := 0
	for round := 0; round < 2; round++ {
		proposeWithRetryAlive(t, c, alive, fmt.Sprintf("round%d", round), deadline)
		total++
		// Find and crash the leader.
		for i, n := range c.nodes {
			if alive[i] && n.IsLeader() {
				c.net.Unlisten(addrOf(NodeID(i)))
				n.Stop()
				alive[i] = false
				break
			}
		}
	}
	proposeWithRetryAlive(t, c, alive, "final", deadline)
	total++

	// Some survivor applied everything, in order.
	waitFor(t, 30*time.Second, func() bool {
		for i := range c.nodes {
			if alive[i] && len(c.appliedOf(i)) >= total {
				return true
			}
		}
		return false
	}, "a survivor applies all values")
}

func proposeWithRetryAlive(t *testing.T, c *cluster, alive map[int]bool, value string, deadline time.Time) {
	t.Helper()
	for time.Now().Before(deadline) {
		for i, n := range c.nodes {
			if !alive[i] || !n.IsLeader() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := n.Propose(ctx, []byte(value))
			cancel()
			if err == nil {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("value %q never committed", value)
}
