// Package paxos implements multi-decree Paxos, the consensus engine
// underneath the Malacology monitor service. The paper's Service
// Metadata interface (Section 4.1) rides on Ceph's Paxos monitor; here
// the monitor package commits batched cluster-map updates as values in a
// replicated log maintained by this package.
//
// The implementation is a classic three-role design: each Node is
// proposer, acceptor, and learner. One node at a time acts as leader
// (distinguished proposer); it establishes leadership with a phase-1
// prepare that covers all unchosen slots, then commits client values
// with single-round-trip phase-2 accepts. Followers detect leader
// failure via heartbeat timeout and elect themselves with a higher
// ballot, staggered by rank to avoid duelling.
package paxos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/stopctx"
)

// NodeID identifies a Paxos participant (monitor rank).
type NodeID int

// Ballot orders proposals; ties break by node id.
type Ballot struct {
	Counter uint64 `json:"counter"`
	Node    NodeID `json:"node"`
}

// Less reports whether b orders before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Counter != o.Counter {
		return b.Counter < o.Counter
	}
	return b.Node < o.Node
}

func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Counter, b.Node) }

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgPrepare MsgType = iota
	MsgPromise
	MsgAccept
	MsgAccepted
	MsgLearn
	MsgHeartbeat
	MsgFetch
	MsgFetchReply
)

// AcceptedValue is an acceptor's record for one slot.
type AcceptedValue struct {
	Ballot Ballot `json:"ballot"`
	Value  []byte `json:"value"`
}

// Msg is a protocol message. One struct covers all types; unused fields
// are zero.
type Msg struct {
	Type   MsgType
	From   NodeID
	Ballot Ballot
	Slot   uint64
	Value  []byte
	OK     bool
	// Promise: previously accepted values for slots >= Slot.
	Accepted map[uint64]AcceptedValue
	// Heartbeat/FetchReply: chosen values being pushed to a lagging peer.
	Chosen map[uint64][]byte
	// Heartbeat: leader's first slot with no chosen value, so followers
	// can detect gaps.
	FirstUnchosen uint64
}

// Transport delivers messages between nodes. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Call sends m to node `to` and waits for its reply.
	Call(ctx context.Context, to NodeID, m Msg) (Msg, error)
	// Self returns this node's id.
	Self() NodeID
	// Peers returns all participant ids including self.
	Peers() []NodeID
}

// Errors surfaced to proposers.
var (
	ErrNotLeader = errors.New("paxos: not the leader")
	ErrNoQuorum  = errors.New("paxos: no quorum")
	ErrStopped   = errors.New("paxos: node stopped")
)

// Config tunes timing.
type Config struct {
	// HeartbeatInterval is how often the leader reasserts itself.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base silence interval after which a
	// follower tries to take over; rank staggers it.
	ElectionTimeout time.Duration
}

// DefaultConfig returns timing suitable for tests and simulation.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: 25 * time.Millisecond,
		ElectionTimeout:   150 * time.Millisecond,
	}
}

// Node is one Paxos participant.
type Node struct {
	cfg   Config
	t     Transport
	apply func(slot uint64, value []byte)

	mu         sync.Mutex
	promised   Ballot                   // guarded by mu
	accepted   map[uint64]AcceptedValue // guarded by mu
	chosen     map[uint64][]byte        // guarded by mu
	nextApply  uint64                   // guarded by mu; first slot not yet delivered to apply
	leading    bool                     // guarded by mu
	ballot     Ballot                   // guarded by mu; leader ballot when leading
	nextSlot   uint64                   // guarded by mu; next free slot when leading
	lastLeader time.Time                // guarded by mu
	leaderHint NodeID                   // guarded by mu

	applyMu sync.Mutex // serializes apply callbacks in slot order

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewNode creates a participant. apply is invoked exactly once per slot,
// in slot order, for every committed value (on all nodes).
func NewNode(t Transport, cfg Config, apply func(slot uint64, value []byte)) *Node {
	return &Node{
		cfg:        cfg,
		t:          t,
		apply:      apply,
		accepted:   make(map[uint64]AcceptedValue),
		chosen:     make(map[uint64][]byte),
		stopCh:     make(chan struct{}),
		lastLeader: time.Now(),
		leaderHint: -1,
	}
}

// Start launches the heartbeat/election loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
}

// Stop terminates background activity.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.wg.Wait()
}

// IsLeader reports whether this node currently believes it leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leading
}

// LeaderHint returns the last observed leader id (-1 when unknown).
func (n *Node) LeaderHint() NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leading {
		return n.t.Self()
	}
	return n.leaderHint
}

// NumChosen returns how many slots this node has learned; for tests.
func (n *Node) NumChosen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.chosen)
}

func (n *Node) quorum() int { return len(n.t.Peers())/2 + 1 }

func (n *Node) run() {
	defer n.wg.Done()
	// Stagger follower elections by rank so the lowest-ranked live node
	// usually wins without duels.
	rank := 0
	peers := n.t.Peers()
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for i, p := range peers {
		if p == n.t.Self() {
			rank = i
		}
	}
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		leading := n.leading
		silent := time.Since(n.lastLeader)
		n.mu.Unlock()

		if leading {
			n.sendHeartbeats()
			continue
		}
		timeout := n.cfg.ElectionTimeout + time.Duration(rank)*n.cfg.ElectionTimeout/2
		if silent > timeout {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeout)
			//lint:ignore errdrop a failed election is normal contention; the next silent period retries it
			_ = n.BecomeLeader(ctx)
			cancel()
			n.mu.Lock()
			n.lastLeader = time.Now()
			n.mu.Unlock()
		}
	}
}

// sendHeartbeats pushes leadership liveness plus the leader's chosen
// frontier to followers.
func (n *Node) sendHeartbeats() {
	n.mu.Lock()
	if !n.leading {
		n.mu.Unlock()
		return
	}
	msg := Msg{
		Type:          MsgHeartbeat,
		From:          n.t.Self(),
		Ballot:        n.ballot,
		FirstUnchosen: n.firstUnchosenLocked(),
	}
	n.mu.Unlock()
	for _, p := range n.t.Peers() {
		if p == n.t.Self() {
			continue
		}
		p := p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := stopctx.WithTimeout(n.stopCh, n.cfg.HeartbeatInterval*2)
			defer cancel()
			//lint:ignore errdrop heartbeats are liveness hints; a follower that misses them calls its own election
			_, _ = n.t.Call(ctx, p, msg)
		}()
	}
}

func (n *Node) firstUnchosenLocked() uint64 {
	s := n.nextApply
	for {
		if _, ok := n.chosen[s]; !ok {
			return s
		}
		s++
	}
}

// BecomeLeader runs phase 1 over all unchosen slots. On success the node
// re-proposes any values it learned were accepted by others, then serves
// Propose calls with single-round-trip commits.
func (n *Node) BecomeLeader(ctx context.Context) error {
	n.mu.Lock()
	b := Ballot{Counter: n.promised.Counter + 1, Node: n.t.Self()}
	start := n.firstUnchosenLocked()
	n.promised = b
	n.mu.Unlock()

	prep := Msg{Type: MsgPrepare, From: n.t.Self(), Ballot: b, Slot: start}
	promises := n.collect(ctx, prep)
	// Count our own implicit promise.
	got := 1
	merged := make(map[uint64]AcceptedValue)
	n.mu.Lock()
	for s, av := range n.accepted {
		if s >= start {
			merged[s] = av
		}
	}
	n.mu.Unlock()
	for _, p := range promises {
		if !p.OK {
			continue
		}
		got++
		for s, av := range p.Accepted {
			if cur, ok := merged[s]; !ok || cur.Ballot.Less(av.Ballot) {
				merged[s] = av
			}
		}
	}
	if got < n.quorum() {
		return ErrNoQuorum
	}

	n.mu.Lock()
	if n.promised != b { // someone outbid us during phase 1
		n.mu.Unlock()
		return ErrNotLeader
	}
	n.leading = true
	n.ballot = b
	n.nextSlot = start
	for s := range merged {
		if s >= n.nextSlot {
			n.nextSlot = s + 1
		}
	}
	n.mu.Unlock()

	// Re-drive any in-flight values under our ballot so they are chosen.
	slots := make([]uint64, 0, len(merged))
	for s := range merged {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		if err := n.commitSlot(ctx, s, merged[s].Value); err != nil {
			n.stepDown()
			return err
		}
	}
	return nil
}

func (n *Node) stepDown() {
	n.mu.Lock()
	n.leading = false
	n.mu.Unlock()
}

// Propose commits value to the next free slot. Only the leader may
// call it; others get ErrNotLeader with a hint available via LeaderHint.
func (n *Node) Propose(ctx context.Context, value []byte) (uint64, error) {
	n.mu.Lock()
	if !n.leading {
		n.mu.Unlock()
		return 0, ErrNotLeader
	}
	slot := n.nextSlot
	n.nextSlot++
	n.mu.Unlock()

	if err := n.commitSlot(ctx, slot, value); err != nil {
		n.stepDown()
		return 0, err
	}
	return slot, nil
}

// commitSlot runs phase 2 for one slot under the current leader ballot
// and, on quorum, marks the value chosen and teaches the followers.
func (n *Node) commitSlot(ctx context.Context, slot uint64, value []byte) error {
	n.mu.Lock()
	b := n.ballot
	if b.Less(n.promised) { // preempted since we last checked
		n.mu.Unlock()
		return ErrNotLeader
	}
	// Self-accept.
	n.promised = b
	n.accepted[slot] = AcceptedValue{Ballot: b, Value: value}
	n.mu.Unlock()

	acc := Msg{Type: MsgAccept, From: n.t.Self(), Ballot: b, Slot: slot, Value: value}
	replies := n.collect(ctx, acc)
	got := 1 // self
	for _, r := range replies {
		if r.OK {
			got++
		} else if b.Less(r.Ballot) {
			return fmt.Errorf("%w: preempted by ballot %s", ErrNotLeader, r.Ballot)
		}
	}
	if got < n.quorum() {
		return ErrNoQuorum
	}

	n.learn(slot, value)
	learn := Msg{Type: MsgLearn, From: n.t.Self(), Ballot: b, Slot: slot, Value: value}
	for _, p := range n.t.Peers() {
		if p == n.t.Self() {
			continue
		}
		p := p
		go func() {
			lctx, cancel := stopctx.WithTimeout(n.stopCh, time.Second)
			defer cancel()
			//lint:ignore errdrop learn pushes are an optimization; a peer that misses one catches up from the chosen frontier in the next heartbeat
			_, _ = n.t.Call(lctx, p, learn)
		}()
	}
	return nil
}

// collect fans msg out to all peers and gathers replies until all
// respond or ctx expires. Failed peers are simply absent.
func (n *Node) collect(ctx context.Context, msg Msg) []Msg {
	peers := n.t.Peers()
	ch := make(chan Msg, len(peers))
	outstanding := 0
	for _, p := range peers {
		if p == n.t.Self() {
			continue
		}
		outstanding++
		p := p
		go func() {
			r, err := n.t.Call(ctx, p, msg)
			if err != nil {
				ch <- Msg{OK: false, From: p, Type: -1}
				return
			}
			ch <- r
		}()
	}
	var out []Msg
	for i := 0; i < outstanding; i++ {
		select {
		case r := <-ch:
			if r.Type != -1 {
				out = append(out, r)
			}
		case <-ctx.Done():
			return out
		}
	}
	return out
}

// learn records a chosen value and applies any now-contiguous prefix.
func (n *Node) learn(slot uint64, value []byte) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	n.mu.Lock()
	if _, ok := n.chosen[slot]; !ok {
		n.chosen[slot] = value
	}
	var ready [][]byte
	var first uint64
	first = n.nextApply
	for {
		v, ok := n.chosen[n.nextApply]
		if !ok {
			break
		}
		ready = append(ready, v)
		n.nextApply++
	}
	n.mu.Unlock()

	if n.apply != nil {
		for i, v := range ready {
			n.apply(first+uint64(i), v)
		}
	}
}

// Handle processes an incoming protocol message; wire it to the
// transport's receive path.
func (n *Node) Handle(_ context.Context, m Msg) (Msg, error) {
	switch m.Type {
	case MsgPrepare:
		return n.onPrepare(m), nil
	case MsgAccept:
		return n.onAccept(m), nil
	case MsgLearn:
		n.observeLeader(m.From)
		n.learn(m.Slot, m.Value)
		return Msg{Type: MsgLearn, OK: true, From: n.t.Self()}, nil
	case MsgHeartbeat:
		return n.onHeartbeat(m), nil
	case MsgFetch:
		return n.onFetch(m), nil
	}
	return Msg{}, fmt.Errorf("paxos: unknown message type %d", m.Type)
}

func (n *Node) observeLeader(id NodeID) {
	n.mu.Lock()
	n.lastLeader = time.Now()
	n.leaderHint = id
	n.mu.Unlock()
}

func (n *Node) onPrepare(m Msg) Msg {
	n.mu.Lock()
	defer n.mu.Unlock()
	reply := Msg{Type: MsgPromise, From: n.t.Self(), Ballot: n.promised}
	if n.promised.Less(m.Ballot) {
		n.promised = m.Ballot
		n.leading = false // someone with a higher ballot is taking over
		// The preparer is the likely next leader; remember it as a hint
		// so forwarded client requests find it promptly.
		n.leaderHint = m.From
		n.lastLeader = time.Now()
		reply.OK = true
		reply.Ballot = m.Ballot
		reply.Accepted = make(map[uint64]AcceptedValue)
		for s, av := range n.accepted {
			if s >= m.Slot {
				reply.Accepted[s] = av
			}
		}
	}
	return reply
}

func (n *Node) onAccept(m Msg) Msg {
	n.mu.Lock()
	if m.Ballot.Less(n.promised) {
		reply := Msg{Type: MsgAccepted, From: n.t.Self(), Ballot: n.promised, OK: false}
		n.mu.Unlock()
		return reply
	}
	n.promised = m.Ballot
	if n.leading && n.ballot.Less(m.Ballot) {
		n.leading = false
	}
	n.accepted[m.Slot] = AcceptedValue{Ballot: m.Ballot, Value: m.Value}
	n.lastLeader = time.Now()
	n.leaderHint = m.From
	n.mu.Unlock()
	return Msg{Type: MsgAccepted, From: n.t.Self(), Ballot: m.Ballot, Slot: m.Slot, OK: true}
}

func (n *Node) onHeartbeat(m Msg) Msg {
	n.mu.Lock()
	stale := m.Ballot.Less(n.promised)
	if !stale {
		n.promised = m.Ballot
		if n.leading && n.t.Self() != m.From {
			n.leading = false
		}
		n.lastLeader = time.Now()
		n.leaderHint = m.From
	}
	behind := n.firstUnchosenLocked() < m.FirstUnchosen
	promised := n.promised
	n.mu.Unlock()

	if behind {
		// Catch up asynchronously; the heartbeat reply itself stays small.
		go n.fetchFrom(m.From)
	}
	return Msg{Type: MsgHeartbeat, From: n.t.Self(), OK: !stale, Ballot: promised}
}

func (n *Node) fetchFrom(peer NodeID) {
	n.mu.Lock()
	from := n.firstUnchosenLocked()
	n.mu.Unlock()
	ctx, cancel := stopctx.WithTimeout(n.stopCh, time.Second)
	defer cancel()
	r, err := n.t.Call(ctx, peer, Msg{Type: MsgFetch, From: n.t.Self(), Slot: from})
	if err != nil || !r.OK {
		return
	}
	// Apply fetched values in slot order.
	slots := make([]uint64, 0, len(r.Chosen))
	for s := range r.Chosen {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		n.learn(s, r.Chosen[s])
	}
}

func (n *Node) onFetch(m Msg) Msg {
	n.mu.Lock()
	defer n.mu.Unlock()
	reply := Msg{Type: MsgFetchReply, From: n.t.Self(), OK: true, Chosen: make(map[uint64][]byte)}
	const maxBatch = 256
	for s, v := range n.chosen {
		if s >= m.Slot && len(reply.Chosen) < maxBatch {
			reply.Chosen[s] = v
		}
	}
	return reply
}
