package paxos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

// wireTransport adapts the wire fabric to the paxos Transport interface.
type wireTransport struct {
	net   *wire.Network
	self  NodeID
	peers []NodeID
}

func addrOf(id NodeID) wire.Addr { return wire.Addr(fmt.Sprintf("paxos.%d", id)) }

func (t *wireTransport) Call(ctx context.Context, to NodeID, m Msg) (Msg, error) {
	r, err := t.net.Call(ctx, addrOf(t.self), addrOf(to), m)
	if err != nil {
		return Msg{}, err
	}
	return r.(Msg), nil
}

func (t *wireTransport) Self() NodeID    { return t.self }
func (t *wireTransport) Peers() []NodeID { return t.peers }

type cluster struct {
	net   *wire.Network
	nodes []*Node
	// applied[i] records (slot, value) pairs delivered to node i in order.
	mu      sync.Mutex
	applied [][]string
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		net:     wire.NewNetwork(),
		applied: make([][]string, n),
	}
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		tr := &wireTransport{net: c.net, self: NodeID(i), peers: peers}
		node := NewNode(tr, DefaultConfig(), func(slot uint64, v []byte) {
			c.mu.Lock()
			c.applied[i] = append(c.applied[i], fmt.Sprintf("%d=%s", slot, v))
			c.mu.Unlock()
		})
		c.nodes = append(c.nodes, node)
		c.net.Listen(addrOf(NodeID(i)), func(ctx context.Context, _ wire.Addr, req any) (any, error) {
			return node.Handle(ctx, req.(Msg))
		})
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Stop()
		}
	})
	return c
}

func (c *cluster) appliedOf(i int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.applied[i]))
	copy(out, c.applied[i])
	return out
}

func (c *cluster) start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting: %s", msg)
}

func TestSingleProposerCommits(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		slot, err := c.nodes[0].Propose(ctx, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if slot != uint64(i) {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		for i := range c.nodes {
			if len(c.appliedOf(i)) != 5 {
				return false
			}
		}
		return true
	}, "all nodes apply 5 slots")
	want := []string{"0=v0", "1=v1", "2=v2", "3=v3", "4=v4"}
	for i := range c.nodes {
		got := c.appliedOf(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d applied %v, want %v", i, got, want)
			}
		}
	}
}

func TestNonLeaderRejected(t *testing.T) {
	c := newCluster(t, 3)
	_, err := c.nodes[1].Propose(context.Background(), []byte("x"))
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestLeaderElection(t *testing.T) {
	c := newCluster(t, 3)
	c.start()
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range c.nodes {
			if n.IsLeader() {
				return true
			}
		}
		return false
	}, "a leader emerges")
}

func TestFailoverPreservesCommitted(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.nodes[0].Propose(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Crash the leader.
	c.net.Unlisten(addrOf(0))
	c.nodes[0].Stop()

	// Node 1 takes over and continues the log.
	waitFor(t, 5*time.Second, func() bool {
		return c.nodes[1].BecomeLeader(ctx) == nil
	}, "node 1 becomes leader")
	slot, err := c.nodes[1].Propose(ctx, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("slot = %d, want 1 (committed prefix preserved)", slot)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.appliedOf(1)) == 2 && len(c.appliedOf(2)) == 2
	}, "survivors apply both slots")
	if got := c.appliedOf(1); got[0] != "0=before" || got[1] != "1=after" {
		t.Fatalf("node1 applied %v", got)
	}
}

func TestNewLeaderAdoptsAcceptedValue(t *testing.T) {
	// A value accepted by a quorum must survive leader change even if the
	// old leader died before broadcasting Learn. We simulate by having
	// leader 0 commit (which accepts on a quorum) and then a new leader
	// running phase 1, which must re-drive slot 0 with the same value.
	c := newCluster(t, 3)
	ctx := context.Background()
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.nodes[0].Propose(ctx, []byte("sticky")); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[2].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	slot, err := c.nodes[2].Propose(ctx, []byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("new proposal went to slot %d, want 1", slot)
	}
	waitFor(t, 2*time.Second, func() bool { return len(c.appliedOf(2)) == 2 }, "node 2 applies")
	if got := c.appliedOf(2); got[0] != "0=sticky" {
		t.Fatalf("slot 0 = %v, want sticky", got[0])
	}
}

func TestPreemptedLeaderStepsDown(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	// Node 0's next proposal must fail: node 1 holds a higher ballot.
	if _, err := c.nodes[0].Propose(ctx, []byte("stale")); err == nil {
		t.Fatal("stale leader proposal succeeded")
	}
	if c.nodes[0].IsLeader() {
		t.Fatal("preempted leader still believes it leads")
	}
}

func TestNoQuorumFails(t *testing.T) {
	c := newCluster(t, 3)
	// Isolate node 0 from both peers.
	c.net.Partition(addrOf(0), addrOf(1))
	c.net.Partition(addrOf(0), addrOf(2))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := c.nodes[0].BecomeLeader(ctx)
	if err == nil {
		t.Fatal("isolated node became leader")
	}
}

func TestLaggingFollowerCatchesUp(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	// Partition node 2 away, commit values, then heal and run heartbeats.
	c.net.Partition(addrOf(0), addrOf(2))
	c.net.Partition(addrOf(1), addrOf(2))
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.nodes[0].Propose(ctx, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.appliedOf(2)); n != 0 {
		t.Fatalf("partitioned node applied %d values", n)
	}
	c.net.HealAll()
	c.start() // heartbeats now flow; node 2 fetches the gap
	waitFor(t, 5*time.Second, func() bool { return len(c.appliedOf(2)) == 4 }, "node 2 catches up")
	got := c.appliedOf(2)
	for i := 0; i < 4; i++ {
		if got[i] != fmt.Sprintf("%d=v%d", i, i) {
			t.Fatalf("node 2 applied %v", got)
		}
	}
}

func TestFiveNodeClusterToleratesTwoFailures(t *testing.T) {
	c := newCluster(t, 5)
	ctx := context.Background()
	if err := c.nodes[0].BecomeLeader(ctx); err != nil {
		t.Fatal(err)
	}
	c.net.Unlisten(addrOf(3))
	c.net.Unlisten(addrOf(4))
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := c.nodes[0].Propose(ctx2, []byte("v")); err != nil {
		t.Fatalf("quorum of 3/5 should commit: %v", err)
	}
}

func TestBallotOrdering(t *testing.T) {
	f := func(c1, c2 uint64, n1, n2 int8) bool {
		b1 := Ballot{Counter: c1, Node: NodeID(n1)}
		b2 := Ballot{Counter: c2, Node: NodeID(n2)}
		// Total order: exactly one of <, ==, > holds.
		less, greater, equal := b1.Less(b2), b2.Less(b1), b1 == b2
		count := 0
		if less {
			count++
		}
		if greater {
			count++
		}
		if equal {
			count++
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAppliedPrefixesConsistent(t *testing.T) {
	// Under random proposal counts, all nodes apply identical prefixes
	// (the core safety property).
	f := func(numVals uint8) bool {
		n := int(numVals%8) + 1
		c := newCluster(t, 3)
		defer func() {
			for _, nd := range c.nodes {
				nd.Stop()
			}
		}()
		ctx := context.Background()
		if err := c.nodes[0].BecomeLeader(ctx); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := c.nodes[0].Propose(ctx, []byte(fmt.Sprintf("v%d", i))); err != nil {
				return false
			}
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if len(c.appliedOf(0)) == n && len(c.appliedOf(1)) == n && len(c.appliedOf(2)) == n {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		a0, a1, a2 := c.appliedOf(0), c.appliedOf(1), c.appliedOf(2)
		if len(a0) != n || len(a1) != n || len(a2) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if a0[i] != a1[i] || a1[i] != a2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProposeCommit(b *testing.B) {
	net := wire.NewNetwork()
	peers := []NodeID{0, 1, 2}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		tr := &wireTransport{net: net, self: NodeID(i), peers: peers}
		node := NewNode(tr, DefaultConfig(), nil)
		nodes = append(nodes, node)
		id := NodeID(i)
		net.Listen(addrOf(id), func(ctx context.Context, _ wire.Addr, req any) (any, error) {
			return node.Handle(ctx, req.(Msg))
		})
	}
	ctx := context.Background()
	if err := nodes[0].BecomeLeader(ctx); err != nil {
		b.Fatal(err)
	}
	val := []byte("bench-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[0].Propose(ctx, val); err != nil {
			b.Fatal(err)
		}
	}
}
