package zlog_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/wire"
	"repro/internal/zlog"
)

// TestAppendsUnderNetworkJitter exercises the full append path with
// per-message latency and jitter, confirming positions stay unique and
// dense.
func TestAppendsUnderNetworkJitter(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := core.Boot(ctx, core.Options{
		MDSs: 1, OSDs: 3, Pools: []string{"zlog"}, Replicas: 2,
		NetLatency: 100 * time.Microsecond, NetJitter: 300 * time.Microsecond,
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const clients, appends = 3, 15
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for i := 0; i < clients; i++ {
		l, err := zlog.Open(ctx, c.Net, wire.Addr(fmt.Sprintf("client.%d", i)), c.MonIDs(), zlog.Options{
			Name: "jittery", Pool: "zlog",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < appends; j++ {
				pos, err := l.Append(ctx, []byte("x"))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if seen[pos] {
					t.Errorf("duplicate position %d", pos)
				}
				seen[pos] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != clients*appends {
		t.Fatalf("positions = %d, want %d", len(seen), clients*appends)
	}
}

// TestConcurrentRecoveries: two clients racing Recover must not corrupt
// the tail — one wins per epoch; the loser observes the conflict and
// the log remains appendable with no position reuse.
func TestConcurrentRecoveries(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := core.Boot(ctx, core.Options{MDSs: 1, OSDs: 3, Pools: []string{"zlog"}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	la, err := zlog.Open(ctx, c.Net, "client.a", c.MonIDs(), zlog.Options{Name: "race", Pool: "zlog"})
	if err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	lb, err := zlog.Open(ctx, c.Net, "client.b", c.MonIDs(), zlog.Options{Name: "race", Pool: "zlog"})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := la.Append(ctx, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, l := range []*zlog.Log{la, lb} {
		i, l := i, l
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.Recover(ctx)
		}()
	}
	wg.Wait()
	// At least one recovery succeeded; a loser reports ErrStale.
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		} else if !errors.Is(err, zlog.ErrStale) {
			t.Fatalf("unexpected recovery error: %v", err)
		}
	}
	if okCount == 0 {
		t.Fatalf("both recoveries failed: %v %v", errs[0], errs[1])
	}
	// The log remains correct: next append lands at position n or later,
	// and the prefix is intact.
	pos, err := lb.Append(ctx, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if pos < n {
		t.Fatalf("append reused position %d (< %d)", pos, n)
	}
	for i := 0; i < n; i++ {
		data, err := la.Read(ctx, uint64(i))
		if err != nil || string(data) != fmt.Sprintf("e%d", i) {
			t.Fatalf("entry %d = %q, %v", i, data, err)
		}
	}
}

// TestAppendWithCachedCapAcrossRecovery: a client holding a cached
// sequencer capability keeps appending while another client runs
// recovery; write-once + seal guarantee no lost or duplicated entries.
func TestAppendWithCachedCapAcrossRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := core.Boot(ctx, core.Options{
		MDSs: 1, OSDs: 3, Pools: []string{"zlog"}, Replicas: 2,
		MDS: mds.Config{RecallTimeout: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	pol := mds.CapPolicy{Cacheable: true, Quota: 8, Delay: 100 * time.Millisecond}
	writer, err := zlog.Open(ctx, c.Net, "client.w", c.MonIDs(), zlog.Options{
		Name: "live", Pool: "zlog", SeqPolicy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	admin, err := zlog.Open(ctx, c.Net, "client.adm", c.MonIDs(), zlog.Options{
		Name: "live", Pool: "zlog", SeqPolicy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	stop := make(chan struct{})
	var mu sync.Mutex
	written := map[uint64]string{}
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := fmt.Sprintf("w%d", i)
			pos, err := writer.Append(ctx, []byte(payload))
			if err != nil {
				writerErr = err
				return
			}
			mu.Lock()
			if _, dup := written[pos]; dup {
				writerErr = fmt.Errorf("duplicate position %d", pos)
				mu.Unlock()
				return
			}
			written[pos] = payload
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	if err := admin.Recover(ctx); err != nil && !errors.Is(err, zlog.ErrStale) {
		t.Fatalf("recovery: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	// Every write the writer believes succeeded is readable with the
	// right payload.
	mu.Lock()
	defer mu.Unlock()
	for pos, payload := range written {
		data, err := admin.Read(ctx, pos)
		if err != nil || string(data) != payload {
			t.Fatalf("pos %d = %q, %v (want %q)", pos, data, err, payload)
		}
	}
	if len(written) < 10 {
		t.Fatalf("writer made little progress: %d appends", len(written))
	}
}
