// Package zlog is the high-performance distributed shared log of
// Section 5.2: an implementation of the CORFU protocol on Malacology.
//
// The three CORFU roles map onto Malacology interfaces exactly as the
// paper describes:
//
//   - the sequencer is a sequencer-typed inode in the metadata service
//     (File Type interface); its capability policy trades latency for
//     throughput (Shared Resource interface, Figures 5-7);
//   - the storage interface — write-once log entries with epoch guards
//     and an atomic seal that returns the maximum written position — is
//     a script object-class installed through the monitor and executed
//     on the object storage daemons (Data I/O interface);
//   - the log epoch lives in the Service Metadata interface, so stale
//     clients are invalidated cluster-wide during recovery.
package zlog

import (
	"context"
	"fmt"

	"repro/internal/mon"
	"repro/internal/types"
)

// ClassName is the object class implementing the CORFU storage
// interface.
const ClassName = "zlog"

// StorageClassScript is the CORFU storage interface as a dynamically
// installed script class (the paper's Lua object interface). Entry
// states in the omap: "D<data>" written, "F" filled (junk), "T"
// trimmed. The object xattrs hold the seal epoch and the maximum
// written position.
//
// Every method input is "<epoch>:<args...>"; requests tagged with an
// epoch below the stored seal epoch are rejected ESTALE — the mechanism
// recovery uses to invalidate stale clients (§5.2.2).
const StorageClassScript = `
-- parse "<head>:<tail>" at the first colon
local function split2(s)
	local i = string.find(s, ":")
	if i == nil then error("EINVAL: malformed input") end
	return string.sub(s, 1, i - 1), string.sub(s, i + 1)
end

local function checkepoch(cls, e)
	local epoch = tonumber(e)
	if epoch == nil then error("EINVAL: bad epoch") end
	local sealed = tonumber(cls.getxattr("epoch")) or 0
	if epoch < sealed then error("ESTALE: epoch " .. e .. " < " .. tostring(sealed)) end
	return epoch
end

local function bumpmax(cls, pos)
	local m = tonumber(cls.getxattr("maxpos")) or -1
	if pos > m then cls.setxattr("maxpos", tostring(pos)) end
end

-- write(<epoch>:<pos>:<data>): write-once
function write(cls)
	local e, rest = split2(cls.input)
	checkepoch(cls, e)
	local p, data = split2(rest)
	local pos = tonumber(p)
	if pos == nil or pos < 0 then error("EINVAL: bad position") end
	local key = "e." .. p
	if cls.omap_get(key) ~= nil then error("EEXIST: position written") end
	cls.omap_set(key, "D" .. data)
	bumpmax(cls, pos)
	return p
end

-- writev(<epoch>:<n>:{<pos>:<len>:<data>}*n): write-once vector.
-- Entries are length-prefixed so data bytes never need escaping. The
-- method is all-or-nothing: one collision aborts the call and the undo
-- log rolls back every entry already applied.
function writev(cls)
	local e, rest = split2(cls.input)
	checkepoch(cls, e)
	local nstr, body = split2(rest)
	local n = tonumber(nstr)
	if n == nil or n < 1 then error("EINVAL: bad count") end
	local m = tonumber(cls.getxattr("maxpos")) or -1
	local i = 0
	while i < n do
		local p, r2 = split2(body)
		local lenstr, r3 = split2(r2)
		local pos = tonumber(p)
		local len = tonumber(lenstr)
		if pos == nil or pos < 0 or len == nil or len < 0 then error("EINVAL: bad entry") end
		local data = string.sub(r3, 1, len)
		if string.len(data) < len then error("EINVAL: truncated entry") end
		body = string.sub(r3, len + 1)
		local key = "e." .. p
		if cls.omap_get(key) ~= nil then error("EEXIST: position written") end
		cls.omap_set(key, "D" .. data)
		if pos > m then m = pos end
		i = i + 1
	end
	cls.setxattr("maxpos", tostring(m))
	return nstr
end

-- read(<epoch>:<pos>): returns the raw entry state
function read(cls)
	local e, p = split2(cls.input)
	checkepoch(cls, e)
	local v = cls.omap_get("e." .. p)
	if v == nil then error("ENOENT: unwritten") end
	return v
end

-- fill(<epoch>:<pos>): mark a hole as junk; idempotent on filled
function fill(cls)
	local e, p = split2(cls.input)
	checkepoch(cls, e)
	local key = "e." .. p
	local v = cls.omap_get(key)
	if v ~= nil then
		if v == "F" then return "F" end
		error("EEXIST: position written")
	end
	cls.omap_set(key, "F")
	bumpmax(cls, tonumber(p))
	return "F"
end

-- trim(<epoch>:<pos>): release a position's storage
function trim(cls)
	local e, p = split2(cls.input)
	checkepoch(cls, e)
	cls.omap_set("e." .. p, "T")
	bumpmax(cls, tonumber(p))
	return "T"
end

-- seal(<epoch>): atomically install the epoch and return maxpos
function seal(cls)
	local epoch = tonumber(cls.input)
	if epoch == nil then error("EINVAL: bad epoch") end
	local sealed = tonumber(cls.getxattr("epoch")) or 0
	if epoch <= sealed then error("ESTALE: seal epoch not newer") end
	cls.setxattr("epoch", tostring(epoch))
	return cls.getxattr("maxpos") or "-1"
end

-- maxpos(<epoch>): read the maximum written position
function maxpos(cls)
	local e = cls.input
	checkepoch(cls, e)
	return cls.getxattr("maxpos") or "-1"
end
`

// EpochKey is the service-metadata key holding log name's epoch.
func EpochKey(name string) string { return "zlog.epoch." + name }

// InstallClass installs the storage class once (idempotent: it checks
// the cluster map first so repeated opens do not bump the version).
func InstallClass(ctx context.Context, monc *mon.Client) error {
	m, err := monc.GetOSDMap(ctx)
	if err != nil {
		return fmt.Errorf("zlog: fetch map: %w", err)
	}
	if _, ok := m.Classes[ClassName]; ok {
		return nil
	}
	return monc.InstallClass(ctx, ClassName, StorageClassScript, "logging")
}

var _ = types.MapOSD // keep the types import for EpochKey documentation
