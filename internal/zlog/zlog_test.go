package zlog_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/rados"
	"repro/internal/wire"
	"repro/internal/zlog"
)

func boot(t *testing.T, opts core.Options) *core.Cluster {
	t.Helper()
	if opts.Pools == nil {
		opts.Pools = []string{"zlog"}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := core.Boot(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func openLog(t *testing.T, c *core.Cluster, client, name string, pol mds.CapPolicy) *zlog.Log {
	t.Helper()
	ctx := ctxT(t, 20*time.Second)
	l, err := zlog.Open(ctx, c.Net, wire.Addr(client), c.MonIDs(), zlog.Options{
		Name: name, Pool: "zlog", Width: 4, SeqPolicy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l
}

func TestAppendReadRoundTrip(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	for i := 0; i < 10; i++ {
		pos, err := l.Append(ctx, []byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if pos != uint64(i) {
			t.Fatalf("append pos = %d, want %d", pos, i)
		}
	}
	for i := 0; i < 10; i++ {
		data, err := l.Read(ctx, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != fmt.Sprintf("entry-%d", i) {
			t.Fatalf("read %d = %q", i, data)
		}
	}
	tail, err := l.Tail(ctx)
	if err != nil || tail != 10 {
		t.Fatalf("tail = %d, %v", tail, err)
	}
}

func TestReadUnwritten(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)
	if _, err := l.Read(ctx, 99); !errors.Is(err, zlog.ErrNotWritten) {
		t.Fatalf("err = %v, want ErrNotWritten", err)
	}
}

func TestWriteOnce(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)
	pos, err := l.Append(ctx, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	// A direct class write at the same position must be refused.
	rc := c.NewRadosClient("client.raw")
	if err := rc.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	obj := fmt.Sprintf("log0.%d", pos%4)
	_, err = rc.Call(ctx, "zlog", obj, zlog.ClassName, "write",
		[]byte(fmt.Sprintf("1:%d:overwrite", pos)))
	if !errors.Is(err, rados.ErrExists) {
		t.Fatalf("overwrite err = %v, want ErrExists", err)
	}
	data, err := l.Read(ctx, pos)
	if err != nil || string(data) != "first" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

func TestFillAndTrim(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	if _, err := l.Append(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Fill a hole ahead of the tail.
	if err := l.Fill(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(ctx, 5); !errors.Is(err, zlog.ErrFilled) {
		t.Fatalf("read filled = %v", err)
	}
	// Fill is idempotent on filled, refused on written.
	if err := l.Fill(ctx, 5); err != nil {
		t.Fatalf("re-fill filled: %v", err)
	}
	if err := l.Fill(ctx, 0); !errors.Is(err, rados.ErrExists) {
		t.Fatalf("fill written = %v, want ErrExists", err)
	}
	// Trim a written position.
	if err := l.Trim(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(ctx, 0); !errors.Is(err, zlog.ErrTrimmed) {
		t.Fatalf("read trimmed = %v", err)
	}
}

func TestEntriesWithColonsAndBinaryish(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)
	payloads := []string{"a:b:c", "{\"k\": 1}", "", "trailing:"}
	var poss []uint64
	for _, p := range payloads {
		pos, err := l.Append(ctx, []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		poss = append(poss, pos)
	}
	for i, p := range payloads {
		data, err := l.Read(ctx, poss[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != p {
			t.Fatalf("payload %q came back %q", p, data)
		}
	}
}

func TestSealRejectsStaleWrites(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	if _, err := l.Append(ctx, []byte("pre-seal")); err != nil {
		t.Fatal(err)
	}
	// Seal epoch 5 on stripe object 0 directly.
	rc := c.NewRadosClient("client.raw")
	if err := rc.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(ctx, "zlog", "log0.0", zlog.ClassName, "seal", []byte("5"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "0" {
		t.Fatalf("seal returned maxpos %q, want 0", out)
	}
	// A write tagged with the old epoch is rejected ESTALE.
	_, err = rc.Call(ctx, "zlog", "log0.0", zlog.ClassName, "write", []byte("1:4:stale"))
	if !errors.Is(err, rados.ErrStale) {
		t.Fatalf("stale write err = %v, want ErrStale", err)
	}
	// Sealing with a non-newer epoch is rejected.
	_, err = rc.Call(ctx, "zlog", "log0.0", zlog.ClassName, "seal", []byte("5"))
	if !errors.Is(err, rados.ErrStale) {
		t.Fatalf("re-seal err = %v, want ErrStale", err)
	}
}

func TestRecoveryRecomputesTail(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 30*time.Second)

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := l.Append(ctx, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A second client runs recovery (as if the sequencer state was
	// lost): the recomputed tail must equal the number of appends.
	l2 := openLog(t, c, "client.2", "log0", mds.CapPolicy{})
	if err := l2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	tail, err := l2.Tail(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tail != n {
		t.Fatalf("recovered tail = %d, want %d", tail, n)
	}
	// Appends continue from the recovered tail without overwriting.
	pos, err := l2.Append(ctx, []byte("post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != n {
		t.Fatalf("post-recovery pos = %d, want %d", pos, n)
	}
	// The old client (stale epoch) transparently resynchronizes.
	pos, err = l.Append(ctx, []byte("from-old-client"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != n+1 {
		t.Fatalf("old client pos = %d, want %d", pos, n+1)
	}
}

func TestRecoveryAfterSequencerLoss(t *testing.T) {
	// The full §5.2.2 scenario: the MDS rank holding the sequencer dies
	// WITHOUT journaled state catching the latest values; recovery
	// recomputes the true tail from the storage interface.
	c := boot(t, core.Options{
		MDSs: 2, OSDs: 3,
		MDS: mds.Config{JournalEvery: 1 << 30}, // never checkpoint: worst case
	})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 40*time.Second)

	const n = 12
	for i := 0; i < n; i++ {
		if _, err := l.Append(ctx, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the rank serving the sequencer.
	c.MDSs[0].Stop()
	monc := c.NewMonClient("client.admin")
	if err := monc.MarkMDSDown(ctx, 0); err != nil {
		t.Fatal(err)
	}
	// Reads never block during sequencer failure.
	data, err := l.Read(ctx, 3)
	if err != nil || string(data) != "e3" {
		t.Fatalf("read during failure = %q, %v", data, err)
	}
	// Rank 1 takes over (journal has only the create, value 0). Without
	// recovery the sequencer would hand out already-written positions;
	// Append survives anyway via write-once retries, but Recover makes
	// it exact. Wait for takeover first.
	deadline := time.Now().Add(15 * time.Second)
	for {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err = l.Tail(cctx)
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sequencer never failed over: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := l.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	tail, err := l.Tail(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tail != n {
		t.Fatalf("recovered tail = %d, want %d", tail, n)
	}
	pos, err := l.Append(ctx, []byte("after-failover"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != n {
		t.Fatalf("pos = %d, want %d", pos, n)
	}
	// Every original entry survived.
	for i := 0; i < n; i++ {
		data, err := l.Read(ctx, uint64(i))
		if err != nil || string(data) != fmt.Sprintf("e%d", i) {
			t.Fatalf("entry %d = %q, %v", i, data, err)
		}
	}
}

func TestConcurrentAppendsUniquePositions(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	ctx := ctxT(t, 40*time.Second)

	const clients, appends = 4, 25
	var mu sync.Mutex
	positions := map[uint64]string{}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		l := openLog(t, c, fmt.Sprintf("client.%d", i), "shared", mds.CapPolicy{})
		name := fmt.Sprintf("c%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < appends; j++ {
				pos, err := l.Append(ctx, []byte(name))
				if err != nil {
					t.Errorf("%s append: %v", name, err)
					return
				}
				mu.Lock()
				if prev, dup := positions[pos]; dup {
					t.Errorf("position %d assigned to both %s and %s", pos, prev, name)
				}
				positions[pos] = name
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(positions) != clients*appends {
		t.Fatalf("positions = %d, want %d", len(positions), clients*appends)
	}
	// The log is dense: every position below the tail is written.
	l := openLog(t, c, "client.check", "shared", mds.CapPolicy{})
	for pos := uint64(0); pos < uint64(clients*appends); pos++ {
		if _, err := l.Read(ctx, pos); err != nil {
			t.Fatalf("hole at %d: %v", pos, err)
		}
	}
}

func TestCachedSequencerBatchingMode(t *testing.T) {
	// The §5.2.1 discovery: with a cacheable sequencer capability a
	// single client appends at much higher throughput, incrementing the
	// sequencer locally.
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	pol := mds.CapPolicy{Cacheable: true, Quota: 1000, Delay: time.Second}
	l := openLog(t, c, "client.1", "log0", pol)
	ctx := ctxT(t, 30*time.Second)

	for i := 0; i < 50; i++ {
		if _, err := l.Append(ctx, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	local, _ := l.MDS().Stats()
	if local < 49 {
		t.Fatalf("local sequencer ops = %d, want ~50 (capability caching)", local)
	}
}

func TestTwoLogsIndependent(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	ctx := ctxT(t, 20*time.Second)
	la := openLog(t, c, "client.a", "loga", mds.CapPolicy{})
	lb := openLog(t, c, "client.b", "logb", mds.CapPolicy{})

	pa, err := la.Append(ctx, []byte("a0"))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := lb.Append(ctx, []byte("b0"))
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0 || pb != 0 {
		t.Fatalf("independent logs interfered: pa=%d pb=%d", pa, pb)
	}
	da, _ := la.Read(ctx, 0)
	db, _ := lb.Read(ctx, 0)
	if string(da) != "a0" || string(db) != "b0" {
		t.Fatalf("cross-contamination: %q %q", da, db)
	}
}

func TestLogSurvivesOSDFailure(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 4, Replicas: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 30*time.Second)

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(ctx, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.OSDs[0].Stop()
	monc := c.NewMonClient("client.admin")
	if err := monc.MarkOSDDown(ctx, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < n; i++ {
		data, err := l.Read(ctx, uint64(i))
		if err != nil || string(data) != fmt.Sprintf("e%d", i) {
			t.Fatalf("entry %d after OSD failure = %q, %v", i, data, err)
		}
	}
	if _, err := l.Append(ctx, []byte("post-failure")); err != nil {
		t.Fatalf("append after OSD failure: %v", err)
	}
}
