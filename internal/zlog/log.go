package zlog

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/mds"
	"repro/internal/mon"
	"repro/internal/rados"
	"repro/internal/types"
	"repro/internal/wire"
)

// Entry-state errors.
var (
	ErrNotWritten = errors.New("zlog: position not written")
	ErrFilled     = errors.New("zlog: position filled (junk)")
	ErrTrimmed    = errors.New("zlog: position trimmed")
	ErrStale      = errors.New("zlog: stale epoch")
	// ErrRetriesExhausted reports that an append gave up after repeated
	// position collisions (e.g. racing a recovery that keeps filling the
	// tail).
	ErrRetriesExhausted = errors.New("zlog: append retries exhausted")
)

// appendAttempts bounds the position-collision retry loop.
const appendAttempts = 8

// Options configures a log handle.
type Options struct {
	Name string // log name (namespaces objects, sequencer, epoch key)
	Pool string // RADOS pool holding log entry objects
	// Width stripes log entries across this many objects (CORFU's
	// cluster striping); default 4.
	Width int
	// SeqPolicy is the capability policy on the sequencer inode. The
	// zero value forces round-trips (the centralized-sequencer mode of
	// §6.2); Cacheable with Delay/Quota enables the batching modes of
	// Figures 5-7.
	SeqPolicy mds.CapPolicy
	// MaxBatch bounds how many queued AsyncAppend entries coalesce into
	// one AppendBatch dispatch; default 64.
	MaxBatch int
	// Window bounds how many coalesced batches may be in flight at once
	// on the async pipeline; default 4.
	Window int
}

// AppendResult is the outcome of one AsyncAppend.
type AppendResult struct {
	Pos uint64
	Err error
}

// pendingAppend is one queued asynchronous append.
type pendingAppend struct {
	ctx  context.Context
	data []byte
	ch   chan AppendResult
}

// Log is a client handle to one shared log.
type Log struct {
	opts Options
	rc   *rados.Client
	mc   *mds.Client
	monc *mon.Client
	// objNames holds the precomputed stripe object names so the append
	// hot path never formats strings per operation.
	objNames []string

	mu    sync.Mutex
	epoch uint64

	// Async pipeline state: queued entries, the lazily started drainer,
	// and the bounded in-flight window.
	plMu      sync.Mutex
	plQueue   []*pendingAppend
	plRunning bool
	plSlots   chan struct{}
	plWG      sync.WaitGroup
}

// SeqPath returns the sequencer inode path for log name.
func SeqPath(name string) string { return "/zlog/" + name + "/seq" }

// Open creates or attaches to a log. It installs the storage class (if
// absent), creates the sequencer inode, and initializes the epoch.
func Open(ctx context.Context, net *wire.Network, self wire.Addr, mons []int, opts Options) (*Log, error) {
	if opts.Name == "" || opts.Pool == "" {
		return nil, fmt.Errorf("zlog: name and pool are required")
	}
	if opts.Width <= 0 {
		opts.Width = 4
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.Window <= 0 {
		opts.Window = 4
	}
	l := &Log{
		opts:    opts,
		rc:      rados.NewClient(net, self+".rados", mons),
		mc:      mds.NewClient(net, self, mons),
		monc:    mon.NewClient(net, self+".mon", mons),
		plSlots: make(chan struct{}, opts.Window),
	}
	l.objNames = make([]string, opts.Width)
	for i := range l.objNames {
		l.objNames[i] = opts.Name + "." + strconv.Itoa(i)
	}
	if err := InstallClass(ctx, l.monc); err != nil {
		return nil, err
	}
	if err := l.rc.RefreshMap(ctx); err != nil {
		return nil, err
	}
	if err := l.mc.Start(ctx); err != nil {
		return nil, err
	}
	if err := l.mc.Open(ctx, SeqPath(opts.Name), mds.TypeSequencer, &opts.SeqPolicy); err != nil {
		return nil, fmt.Errorf("zlog: create sequencer: %w", err)
	}
	// Initialize the epoch if this is a fresh log.
	ep, err := l.fetchEpoch(ctx)
	if err != nil {
		return nil, err
	}
	if ep == 0 {
		if err := l.monc.SetService(ctx, types.MapOSD, EpochKey(opts.Name), "1"); err != nil {
			return nil, err
		}
		ep = 1
	}
	l.mu.Lock()
	l.epoch = ep
	l.mu.Unlock()
	return l, nil
}

// Close drains the async pipeline and releases client resources.
func (l *Log) Close() {
	l.Flush()
	l.mc.Stop()
}

// Epoch returns the client's cached log epoch.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

func (l *Log) fetchEpoch(ctx context.Context) (uint64, error) {
	m, err := l.monc.GetOSDMap(ctx)
	if err != nil {
		return 0, err
	}
	v, ok := m.Service[EpochKey(l.opts.Name)]
	if !ok {
		return 0, nil
	}
	ep, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("zlog: corrupt epoch %q: %w", v, err)
	}
	return ep, nil
}

func (l *Log) refreshEpoch(ctx context.Context) error {
	ep, err := l.fetchEpoch(ctx)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if ep > l.epoch {
		l.epoch = ep
	}
	l.mu.Unlock()
	return nil
}

// objectFor maps a log position to its precomputed stripe object.
func (l *Log) objectFor(pos uint64) string {
	return l.objNames[pos%uint64(l.opts.Width)]
}

// posArg renders pos as a class argument without fmt overhead.
func posArg(pos uint64) []byte {
	return strconv.AppendUint(make([]byte, 0, 20), pos, 10)
}

// writeArgs renders "<pos>:<data>" for the write method.
func writeArgs(pos uint64, data []byte) []byte {
	buf := make([]byte, 0, 21+len(data))
	buf = strconv.AppendUint(buf, pos, 10)
	buf = append(buf, ':')
	return append(buf, data...)
}

// writevArgs renders the multi-entry payload for the writev method:
// "<n>:" then one "<pos>:<len>:<data>" per entry, length-prefixed so
// entry bytes never need escaping.
func writevArgs(idxs []int, entries [][]byte, positions []uint64) []byte {
	size := 21
	for _, i := range idxs {
		size += len(entries[i]) + 42
	}
	buf := make([]byte, 0, size)
	buf = strconv.AppendInt(buf, int64(len(idxs)), 10)
	buf = append(buf, ':')
	for _, i := range idxs {
		buf = strconv.AppendUint(buf, positions[i], 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(len(entries[i])), 10)
		buf = append(buf, ':')
		buf = append(buf, entries[i]...)
	}
	return buf
}

// call invokes a storage-class method on pos's stripe object.
func (l *Log) call(ctx context.Context, pos uint64, method string, args []byte) ([]byte, error) {
	return l.callObj(ctx, l.objectFor(pos), method, args)
}

// callObj invokes a storage-class method with the epoch prefix,
// refreshing the epoch and retrying when sealed mid-flight.
func (l *Log) callObj(ctx context.Context, obj, method string, args []byte) ([]byte, error) {
	for attempt := 0; attempt < 3; attempt++ {
		input := make([]byte, 0, 21+len(args))
		input = strconv.AppendUint(input, l.Epoch(), 10)
		input = append(input, ':')
		input = append(input, args...)
		out, err := l.rc.Call(ctx, l.opts.Pool, obj, ClassName, method, input)
		if err != nil && errors.Is(err, rados.ErrStale) {
			// Sealed: a recovery bumped the epoch. Resync and retry.
			if rerr := l.refreshEpoch(ctx); rerr != nil {
				return nil, rerr
			}
			continue
		}
		return out, err
	}
	return nil, ErrStale
}

// writeAt writes data at pos; rados.ErrExists reports a collision.
func (l *Log) writeAt(ctx context.Context, pos uint64, data []byte) error {
	_, err := l.call(ctx, pos, "write", writeArgs(pos, data))
	return err
}

// fillAbandoned best-effort junk-fills a position that was allocated
// but will never be written, so readers do not stall on the hole.
func (l *Log) fillAbandoned(pos uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	//lint:ignore errdrop fill is best effort: the next recovery's seal pass bounds any hole that survives it
	_ = l.Fill(ctx, pos)
}

// fillRange junk-fills the positions of idxs, typically the unwritten
// remainder of a failed batch.
func (l *Log) fillRange(idxs []int, positions []uint64) {
	for _, i := range idxs {
		l.fillAbandoned(positions[i])
	}
}

// Append assigns the next position from the sequencer and writes data
// there. On a sealed-epoch race it resynchronizes and retries with a
// fresh position, as CORFU clients do; positions it allocates but
// cannot write are junk-filled so readers never stall on them.
func (l *Log) Append(ctx context.Context, data []byte) (uint64, error) {
	for attempt := 0; attempt < appendAttempts; attempt++ {
		v, err := l.mc.Next(ctx, SeqPath(l.opts.Name))
		if err != nil {
			return 0, fmt.Errorf("zlog: sequencer: %w", err)
		}
		pos := v - 1 // sequencer counts from 1; log positions from 0
		err = l.writeAt(ctx, pos, data)
		switch {
		case err == nil:
			return pos, nil
		case errors.Is(err, rados.ErrExists):
			// Someone (e.g. recovery fill) took the position; get a new one.
			continue
		default:
			l.fillAbandoned(pos)
			return 0, err
		}
	}
	return 0, ErrRetriesExhausted
}

// AppendBatch appends entries as one batch: a single NextN range
// allocation covers every entry and same-stripe entries coalesce into
// one writev class call, so n entries cost one sequencer message plus
// at most Width object calls instead of the serial path's 2n. The
// returned positions parallel entries; on error, allocated-but-unwritten
// positions are junk-filled.
func (l *Log) AppendBatch(ctx context.Context, entries [][]byte) ([]uint64, error) {
	n := len(entries)
	if n == 0 {
		return nil, nil
	}
	first, err := l.mc.NextN(ctx, SeqPath(l.opts.Name), n)
	if err != nil {
		return nil, fmt.Errorf("zlog: sequencer: %w", err)
	}
	positions := make([]uint64, n)
	for i := range positions {
		positions[i] = first - 1 + uint64(i)
	}

	width := l.opts.Width
	groups := make([][]int, width)
	for i := range positions {
		s := int(positions[i] % uint64(width))
		groups[s] = append(groups[s], i)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, width)
	for s := 0; s < width; s++ {
		idxs := groups[s]
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(obj string, idxs []int) {
			defer wg.Done()
			errCh <- l.writeStripe(ctx, obj, idxs, entries, positions)
		}(l.objNames[s], idxs)
	}
	wg.Wait()
	close(errCh)
	for werr := range errCh {
		if werr != nil {
			return nil, werr
		}
	}
	return positions, nil
}

// writeStripe lands idxs' entries on one stripe object with a single
// writev call. The class executes all-or-nothing, so one collision
// aborts the whole vector; it then degrades to per-entry writes where
// only the contested entries reassign positions via the serial path.
func (l *Log) writeStripe(ctx context.Context, obj string, idxs []int, entries [][]byte, positions []uint64) error {
	_, err := l.callObj(ctx, obj, "writev", writevArgs(idxs, entries, positions))
	if err == nil {
		return nil
	}
	if !errors.Is(err, rados.ErrExists) {
		l.fillRange(idxs, positions)
		return err
	}
	for k, i := range idxs {
		werr := l.writeAt(ctx, positions[i], entries[i])
		if errors.Is(werr, rados.ErrExists) {
			pos, aerr := l.Append(ctx, entries[i])
			if aerr != nil {
				l.fillRange(idxs[k+1:], positions)
				return aerr
			}
			positions[i] = pos
			continue
		}
		if werr != nil {
			l.fillRange(idxs[k:], positions)
			return werr
		}
	}
	return nil
}

// AsyncAppend queues data for appending and returns a channel that
// receives its assigned position (buffered; safe to read late). Queued
// entries coalesce into AppendBatch dispatches of up to MaxBatch, with
// at most Window batches in flight — the pipelined append path.
// Ordering is preserved within one dispatch but not across concurrent
// dispatches; use Flush to drain everything queued so far.
func (l *Log) AsyncAppend(ctx context.Context, data []byte) <-chan AppendResult {
	p := &pendingAppend{ctx: ctx, data: data, ch: make(chan AppendResult, 1)}
	l.plMu.Lock()
	l.plQueue = append(l.plQueue, p)
	l.plWG.Add(1)
	if !l.plRunning {
		l.plRunning = true
		go l.drainPipeline()
	}
	l.plMu.Unlock()
	return p.ch
}

// Flush blocks until every AsyncAppend queued so far has completed.
func (l *Log) Flush() { l.plWG.Wait() }

// drainPipeline coalesces queued appends into bounded-window batch
// dispatches; it exits once the queue empties.
func (l *Log) drainPipeline() {
	for {
		l.plMu.Lock()
		if len(l.plQueue) == 0 {
			l.plRunning = false
			l.plMu.Unlock()
			return
		}
		take := l.opts.MaxBatch
		if len(l.plQueue) < take {
			take = len(l.plQueue)
		}
		batch := l.plQueue[:take:take]
		l.plQueue = l.plQueue[take:]
		l.plMu.Unlock()

		// Wait for a window slot; the batch's own context bounds the wait
		// so a cancelled producer cannot wedge the drainer.
		ctx := batch[0].ctx
		select {
		case l.plSlots <- struct{}{}:
		case <-ctx.Done():
			for _, p := range batch {
				p.ch <- AppendResult{Err: ctx.Err()}
				l.plWG.Done()
			}
			continue
		}
		go l.dispatchBatch(batch)
	}
}

// dispatchBatch runs one coalesced AppendBatch and fans results back to
// the producers.
func (l *Log) dispatchBatch(batch []*pendingAppend) {
	defer func() { <-l.plSlots }()
	ctx := batch[0].ctx
	entries := make([][]byte, len(batch))
	for i, p := range batch {
		entries[i] = p.data
	}
	positions, err := l.AppendBatch(ctx, entries)
	for i, p := range batch {
		if err != nil {
			p.ch <- AppendResult{Err: err}
		} else {
			p.ch <- AppendResult{Pos: positions[i]}
		}
		l.plWG.Done()
	}
}

// Read returns the entry at pos. Reads never block on the sequencer, so
// they proceed even during sequencer failure (§5.2.2).
func (l *Log) Read(ctx context.Context, pos uint64) ([]byte, error) {
	out, err := l.call(ctx, pos, "read", posArg(pos))
	if err != nil {
		if errors.Is(err, rados.ErrNotFound) {
			return nil, ErrNotWritten
		}
		return nil, err
	}
	if len(out) == 0 {
		return nil, ErrNotWritten
	}
	switch out[0] {
	case 'D':
		return out[1:], nil
	case 'F':
		return nil, ErrFilled
	case 'T':
		return nil, ErrTrimmed
	}
	return nil, fmt.Errorf("zlog: corrupt entry state %q", out[0])
}

// Fill marks pos as junk so readers skip it.
func (l *Log) Fill(ctx context.Context, pos uint64) error {
	_, err := l.call(ctx, pos, "fill", posArg(pos))
	if errors.Is(err, rados.ErrExists) {
		return fmt.Errorf("zlog: fill %d: %w", pos, rados.ErrExists)
	}
	return err
}

// Trim releases the storage at pos.
func (l *Log) Trim(ctx context.Context, pos uint64) error {
	_, err := l.call(ctx, pos, "trim", posArg(pos))
	return err
}

// Tail returns the next position the sequencer will assign (i.e. the
// current length of the log).
func (l *Log) Tail(ctx context.Context) (uint64, error) {
	return l.mc.Read(ctx, SeqPath(l.opts.Name))
}

// Recover runs the CORFU sequencer-recovery protocol (§5.2.2): bump the
// epoch in the service metadata (invalidating stale clients), seal every
// stripe object in parallel (collecting the maximum written position),
// and install the recomputed tail into the sequencer inode.
func (l *Log) Recover(ctx context.Context) error {
	cur, err := l.fetchEpoch(ctx)
	if err != nil {
		return err
	}
	newEpoch := cur + 1
	if err := l.monc.SetService(ctx, types.MapOSD, EpochKey(l.opts.Name), strconv.FormatUint(newEpoch, 10)); err != nil {
		return fmt.Errorf("zlog: publish epoch: %w", err)
	}

	// Seal all stripe objects concurrently; sealing is what guarantees no
	// in-flight stale append can land after we compute the tail, and the
	// stripes are independent so the fan-out costs one round-trip total.
	epochArg := []byte(strconv.FormatUint(newEpoch, 10))
	type sealResult struct {
		obj string
		max int64
		err error
	}
	results := make(chan sealResult, l.opts.Width)
	for i := 0; i < l.opts.Width; i++ {
		go func(obj string) {
			out, err := l.rc.Call(ctx, l.opts.Pool, obj, ClassName, "seal", epochArg)
			if err != nil && errors.Is(err, rados.ErrStale) {
				// A racing recovery may have sealed this stripe at our
				// exact epoch first. Equal-epoch recoveries converge on the
				// same tail, so read the max position under our epoch
				// instead of losing; only a genuinely higher epoch still
				// rejects us here.
				out, err = l.rc.Call(ctx, l.opts.Pool, obj, ClassName, "maxpos", epochArg)
			}
			if err != nil {
				results <- sealResult{obj: obj, err: err}
				return
			}
			mp, perr := strconv.ParseInt(string(out), 10, 64)
			if perr != nil {
				results <- sealResult{obj: obj, err: fmt.Errorf("returned %q", out)}
				return
			}
			results <- sealResult{obj: obj, max: mp}
		}(l.objNames[i])
	}
	maxPos := int64(-1)
	var sealErr error
	stale := false
	for i := 0; i < l.opts.Width; i++ {
		r := <-results
		switch {
		case r.err == nil:
			if r.max > maxPos {
				maxPos = r.max
			}
		case errors.Is(r.err, rados.ErrStale):
			stale = true
		default:
			if sealErr == nil {
				sealErr = fmt.Errorf("zlog: seal %s: %w", r.obj, r.err)
			}
		}
	}
	if stale {
		// Another recovery with a higher epoch is in flight; defer to it.
		return fmt.Errorf("zlog: concurrent recovery: %w", ErrStale)
	}
	if sealErr != nil {
		return sealErr
	}

	// Install the recomputed tail: the sequencer resumes at maxPos+1
	// (counter value maxPos+1 means next assigned position is maxPos+1).
	if err := l.mc.SetValue(ctx, SeqPath(l.opts.Name), uint64(maxPos+1)); err != nil {
		return fmt.Errorf("zlog: install tail: %w", err)
	}
	l.mu.Lock()
	if newEpoch > l.epoch {
		l.epoch = newEpoch
	}
	l.mu.Unlock()
	return nil
}

// MDS exposes the sequencer's metadata client (for policy tuning in
// benchmarks).
func (l *Log) MDS() *mds.Client { return l.mc }
