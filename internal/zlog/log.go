package zlog

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/mds"
	"repro/internal/mon"
	"repro/internal/rados"
	"repro/internal/types"
	"repro/internal/wire"
)

// Entry-state errors.
var (
	ErrNotWritten = errors.New("zlog: position not written")
	ErrFilled     = errors.New("zlog: position filled (junk)")
	ErrTrimmed    = errors.New("zlog: position trimmed")
	ErrStale      = errors.New("zlog: stale epoch")
)

// Options configures a log handle.
type Options struct {
	Name string // log name (namespaces objects, sequencer, epoch key)
	Pool string // RADOS pool holding log entry objects
	// Width stripes log entries across this many objects (CORFU's
	// cluster striping); default 4.
	Width int
	// SeqPolicy is the capability policy on the sequencer inode. The
	// zero value forces round-trips (the centralized-sequencer mode of
	// §6.2); Cacheable with Delay/Quota enables the batching modes of
	// Figures 5-7.
	SeqPolicy mds.CapPolicy
}

// Log is a client handle to one shared log.
type Log struct {
	opts Options
	rc   *rados.Client
	mc   *mds.Client
	monc *mon.Client

	mu    sync.Mutex
	epoch uint64
}

// SeqPath returns the sequencer inode path for log name.
func SeqPath(name string) string { return "/zlog/" + name + "/seq" }

// Open creates or attaches to a log. It installs the storage class (if
// absent), creates the sequencer inode, and initializes the epoch.
func Open(ctx context.Context, net *wire.Network, self wire.Addr, mons []int, opts Options) (*Log, error) {
	if opts.Name == "" || opts.Pool == "" {
		return nil, fmt.Errorf("zlog: name and pool are required")
	}
	if opts.Width <= 0 {
		opts.Width = 4
	}
	l := &Log{
		opts: opts,
		rc:   rados.NewClient(net, self+".rados", mons),
		mc:   mds.NewClient(net, self, mons),
		monc: mon.NewClient(net, self+".mon", mons),
	}
	if err := InstallClass(ctx, l.monc); err != nil {
		return nil, err
	}
	if err := l.rc.RefreshMap(ctx); err != nil {
		return nil, err
	}
	if err := l.mc.Start(ctx); err != nil {
		return nil, err
	}
	if err := l.mc.Open(ctx, SeqPath(opts.Name), mds.TypeSequencer, &opts.SeqPolicy); err != nil {
		return nil, fmt.Errorf("zlog: create sequencer: %w", err)
	}
	// Initialize the epoch if this is a fresh log.
	ep, err := l.fetchEpoch(ctx)
	if err != nil {
		return nil, err
	}
	if ep == 0 {
		if err := l.monc.SetService(ctx, types.MapOSD, EpochKey(opts.Name), "1"); err != nil {
			return nil, err
		}
		ep = 1
	}
	l.mu.Lock()
	l.epoch = ep
	l.mu.Unlock()
	return l, nil
}

// Close releases client resources.
func (l *Log) Close() { l.mc.Stop() }

// Epoch returns the client's cached log epoch.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

func (l *Log) fetchEpoch(ctx context.Context) (uint64, error) {
	m, err := l.monc.GetOSDMap(ctx)
	if err != nil {
		return 0, err
	}
	v, ok := m.Service[EpochKey(l.opts.Name)]
	if !ok {
		return 0, nil
	}
	ep, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("zlog: corrupt epoch %q: %w", v, err)
	}
	return ep, nil
}

func (l *Log) refreshEpoch(ctx context.Context) error {
	ep, err := l.fetchEpoch(ctx)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if ep > l.epoch {
		l.epoch = ep
	}
	l.mu.Unlock()
	return nil
}

// objectFor maps a log position to its stripe object.
func (l *Log) objectFor(pos uint64) string {
	return fmt.Sprintf("%s.%d", l.opts.Name, pos%uint64(l.opts.Width))
}

// call invokes a storage-class method with the epoch prefix, refreshing
// the epoch and retrying once when sealed mid-flight.
func (l *Log) call(ctx context.Context, pos uint64, method, args string) ([]byte, error) {
	for attempt := 0; attempt < 3; attempt++ {
		input := strconv.FormatUint(l.Epoch(), 10) + ":" + args
		out, err := l.rc.Call(ctx, l.opts.Pool, l.objectFor(pos), ClassName, method, []byte(input))
		if err != nil && errors.Is(err, rados.ErrStale) {
			// Sealed: a recovery bumped the epoch. Resync and retry.
			if rerr := l.refreshEpoch(ctx); rerr != nil {
				return nil, rerr
			}
			continue
		}
		return out, err
	}
	return nil, ErrStale
}

// Append assigns the next position from the sequencer and writes data
// there. On a sealed-epoch race it resynchronizes and retries with a
// fresh position, as CORFU clients do.
func (l *Log) Append(ctx context.Context, data []byte) (uint64, error) {
	for attempt := 0; attempt < 8; attempt++ {
		v, err := l.mc.Next(ctx, SeqPath(l.opts.Name))
		if err != nil {
			return 0, fmt.Errorf("zlog: sequencer: %w", err)
		}
		pos := v - 1 // sequencer counts from 1; log positions from 0
		args := strconv.FormatUint(pos, 10) + ":" + string(data)
		_, err = l.call(ctx, pos, "write", args)
		switch {
		case err == nil:
			return pos, nil
		case errors.Is(err, rados.ErrExists):
			// Someone (e.g. recovery fill) took the position; get a new one.
			continue
		default:
			return 0, err
		}
	}
	return 0, fmt.Errorf("zlog: append retries exhausted")
}

// Read returns the entry at pos. Reads never block on the sequencer, so
// they proceed even during sequencer failure (§5.2.2).
func (l *Log) Read(ctx context.Context, pos uint64) ([]byte, error) {
	out, err := l.call(ctx, pos, "read", strconv.FormatUint(pos, 10))
	if err != nil {
		if errors.Is(err, rados.ErrNotFound) {
			return nil, ErrNotWritten
		}
		return nil, err
	}
	if len(out) == 0 {
		return nil, ErrNotWritten
	}
	switch out[0] {
	case 'D':
		return out[1:], nil
	case 'F':
		return nil, ErrFilled
	case 'T':
		return nil, ErrTrimmed
	}
	return nil, fmt.Errorf("zlog: corrupt entry state %q", out[0])
}

// Fill marks pos as junk so readers skip it.
func (l *Log) Fill(ctx context.Context, pos uint64) error {
	_, err := l.call(ctx, pos, "fill", strconv.FormatUint(pos, 10))
	if errors.Is(err, rados.ErrExists) {
		return fmt.Errorf("zlog: fill %d: %w", pos, rados.ErrExists)
	}
	return err
}

// Trim releases the storage at pos.
func (l *Log) Trim(ctx context.Context, pos uint64) error {
	_, err := l.call(ctx, pos, "trim", strconv.FormatUint(pos, 10))
	return err
}

// Tail returns the next position the sequencer will assign (i.e. the
// current length of the log).
func (l *Log) Tail(ctx context.Context) (uint64, error) {
	return l.mc.Read(ctx, SeqPath(l.opts.Name))
}

// Recover runs the CORFU sequencer-recovery protocol (§5.2.2): bump the
// epoch in the service metadata (invalidating stale clients), seal every
// stripe object (collecting the maximum written position), and install
// the recomputed tail into the sequencer inode.
func (l *Log) Recover(ctx context.Context) error {
	cur, err := l.fetchEpoch(ctx)
	if err != nil {
		return err
	}
	newEpoch := cur + 1
	if err := l.monc.SetService(ctx, types.MapOSD, EpochKey(l.opts.Name), strconv.FormatUint(newEpoch, 10)); err != nil {
		return fmt.Errorf("zlog: publish epoch: %w", err)
	}

	// Seal all stripe objects; sealing is what guarantees no in-flight
	// stale append can land after we compute the tail.
	maxPos := int64(-1)
	epochArg := []byte(strconv.FormatUint(newEpoch, 10))
	for i := 0; i < l.opts.Width; i++ {
		obj := fmt.Sprintf("%s.%d", l.opts.Name, i)
		out, err := l.rc.Call(ctx, l.opts.Pool, obj, ClassName, "seal", epochArg)
		if err != nil {
			if errors.Is(err, rados.ErrStale) {
				// Another recovery with a higher epoch is in flight; defer
				// to it.
				return fmt.Errorf("zlog: concurrent recovery: %w", ErrStale)
			}
			return fmt.Errorf("zlog: seal %s: %w", obj, err)
		}
		mp, perr := strconv.ParseInt(string(out), 10, 64)
		if perr != nil {
			return fmt.Errorf("zlog: seal %s returned %q", obj, out)
		}
		if mp > maxPos {
			maxPos = mp
		}
	}

	// Install the recomputed tail: the sequencer resumes at maxPos+1
	// (counter value maxPos+1 means next assigned position is maxPos+1).
	if err := l.mc.SetValue(ctx, SeqPath(l.opts.Name), uint64(maxPos+1)); err != nil {
		return fmt.Errorf("zlog: install tail: %w", err)
	}
	l.mu.Lock()
	if newEpoch > l.epoch {
		l.epoch = newEpoch
	}
	l.mu.Unlock()
	return nil
}

// MDS exposes the sequencer's metadata client (for policy tuning in
// benchmarks).
func (l *Log) MDS() *mds.Client { return l.mc }
