package zlog_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/rados"
	"repro/internal/zlog"
)

func TestAppendBatchRoundTrip(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	entries := [][]byte{
		[]byte("plain"), []byte("with:colons:inside"), []byte(""),
		[]byte("{\"json\": true}"), []byte("trailing:"), []byte("123:456"),
	}
	positions, err := l.AppendBatch(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != len(entries) {
		t.Fatalf("positions = %d, want %d", len(positions), len(entries))
	}
	for i, pos := range positions {
		if pos != uint64(i) {
			t.Fatalf("position %d = %d, want contiguous from 0", i, pos)
		}
		data, err := l.Read(ctx, pos)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(entries[i]) {
			t.Fatalf("entry %d came back %q, want %q", i, data, entries[i])
		}
	}
	tail, err := l.Tail(ctx)
	if err != nil || tail != uint64(len(entries)) {
		t.Fatalf("tail = %d, %v; want %d", tail, err, len(entries))
	}
	// Serial appends continue past the batch without gaps.
	pos, err := l.Append(ctx, []byte("after"))
	if err != nil || pos != uint64(len(entries)) {
		t.Fatalf("post-batch pos = %d, %v", pos, err)
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 10*time.Second)
	positions, err := l.AppendBatch(ctx, nil)
	if err != nil || positions != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", positions, err)
	}
}

func TestAppendBatchMessageComplexity(t *testing.T) {
	// The point of the batched path (ISSUE satellite): AppendBatch(n)
	// costs one sequencer message plus at most Width object calls, where
	// the serial loop pays 2n. Replicas:1 and a quiet gossip interval
	// keep the fabric counters attributable to the appends.
	c := boot(t, core.Options{
		MDSs: 1, OSDs: 3, Replicas: 1,
		OSD: rados.OSDConfig{GossipInterval: time.Hour},
	})
	ctx := ctxT(t, 30*time.Second)
	const n, width, slack = 32, 4, 8

	serial := openLog(t, c, "client.serial", "serlog", mds.CapPolicy{})
	batched := openLog(t, c, "client.batched", "batlog", mds.CapPolicy{})
	// Warm both paths (policy probe, class install, map fetches) so the
	// measured windows hold steady-state traffic only.
	if _, err := serial.Append(ctx, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if _, err := batched.AppendBatch(ctx, [][]byte{[]byte("warm")}); err != nil {
		t.Fatal(err)
	}

	before := c.Net.Stats()
	for i := 0; i < n; i++ {
		if _, err := serial.Append(ctx, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	mid := c.Net.Stats()
	entries := make([][]byte, n)
	for i := range entries {
		entries[i] = []byte("b")
	}
	if _, err := batched.AppendBatch(ctx, entries); err != nil {
		t.Fatal(err)
	}
	after := c.Net.Stats()

	serialCalls := mid.Calls - before.Calls
	batchedCalls := after.Calls - mid.Calls
	if serialCalls < 2*n {
		t.Fatalf("serial calls = %d, want >= %d (sequencer + write per entry)", serialCalls, 2*n)
	}
	if batchedCalls > 1+width+slack {
		t.Fatalf("batched calls = %d, want <= %d (one NextN + one writev per stripe)", batchedCalls, 1+width+slack)
	}
	if batchedCalls*4 > serialCalls {
		t.Fatalf("batched path not amortized: %d batched vs %d serial calls", batchedCalls, serialCalls)
	}
}

func TestAsyncAppendPipeline(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	ctx := ctxT(t, 30*time.Second)
	l, err := zlog.Open(ctx, c.Net, "client.1", c.MonIDs(), zlog.Options{
		Name: "log0", Pool: "zlog", Width: 4,
		SeqPolicy: mds.CapPolicy{},
		MaxBatch:  16, Window: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)

	const n = 100
	chans := make([]<-chan zlog.AppendResult, n)
	for i := 0; i < n; i++ {
		chans[i] = l.AsyncAppend(ctx, []byte(fmt.Sprintf("async-%d", i)))
	}
	l.Flush()

	seen := make(map[uint64]int)
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("async append %d: %v", i, r.Err)
		}
		if prev, dup := seen[r.Pos]; dup {
			t.Fatalf("position %d assigned to entries %d and %d", r.Pos, prev, i)
		}
		seen[r.Pos] = i
		data, err := l.Read(ctx, r.Pos)
		if err != nil || string(data) != fmt.Sprintf("async-%d", i) {
			t.Fatalf("entry %d at %d = %q, %v", i, r.Pos, data, err)
		}
	}
	if len(seen) != n {
		t.Fatalf("unique positions = %d, want %d", len(seen), n)
	}
}

func TestAppendBatchCollisionReassigns(t *testing.T) {
	// A position inside the batch's range is already taken (as recovery
	// fills do): the stripe degrades to per-entry writes, the contested
	// entry reassigns through the serial path, and the log stays dense —
	// readers never stall on a hole.
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	// Occupy position 2 behind the sequencer's back.
	rc := c.NewRadosClient("client.raw")
	if err := rc.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Call(ctx, "zlog", "log0.2", zlog.ClassName, "fill", []byte("1:2")); err != nil {
		t.Fatal(err)
	}

	entries := make([][]byte, 8)
	for i := range entries {
		entries[i] = []byte(fmt.Sprintf("e%d", i))
	}
	positions, err := l.AppendBatch(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i, pos := range positions {
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
		if pos == 2 {
			t.Fatal("contested position 2 was handed out anyway")
		}
		data, err := l.Read(ctx, pos)
		if err != nil || string(data) != string(entries[i]) {
			t.Fatalf("entry %d at %d = %q, %v", i, pos, data, err)
		}
	}
	// Dense below the tail: every position is written or filled, never
	// unwritten.
	tail, err := l.Tail(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for pos := uint64(0); pos < tail; pos++ {
		if _, err := l.Read(ctx, pos); errors.Is(err, zlog.ErrNotWritten) {
			t.Fatalf("hole at %d after collision handling", pos)
		}
	}
}

func TestAppendRetriesExhaustedTyped(t *testing.T) {
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	l := openLog(t, c, "client.1", "log0", mds.CapPolicy{})
	ctx := ctxT(t, 20*time.Second)

	// Occupy the next 8 positions behind the sequencer's back so every
	// retry collides; the loop must give up with the typed error.
	rc := c.NewRadosClient("client.raw")
	if err := rc.RefreshMap(ctx); err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 8; pos++ {
		obj := fmt.Sprintf("log0.%d", pos%4)
		in := []byte(fmt.Sprintf("1:%d:squat", pos))
		if _, err := rc.Call(ctx, "zlog", obj, zlog.ClassName, "write", in); err != nil {
			t.Fatal(err)
		}
	}
	_, err := l.Append(ctx, []byte("doomed"))
	if !errors.Is(err, zlog.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// The 9th attempt is past the squatted range and succeeds.
	pos, err := l.Append(ctx, []byte("lands"))
	if err != nil || pos != 8 {
		t.Fatalf("pos = %d, %v; want 8", pos, err)
	}
}

func TestRecoveryMidRangeForcesResync(t *testing.T) {
	// A client holding a cached range grant keeps appending while
	// another client runs recovery: the epoch bump seals the stripes, the
	// stale client's writes bounce with ESTALE, and it resynchronizes —
	// no entry lands twice and everything stays readable.
	c := boot(t, core.Options{MDSs: 1, OSDs: 3})
	pol := mds.CapPolicy{Cacheable: true, Quota: 1000, Delay: 2 * time.Second}
	l := openLog(t, c, "client.1", "log0", pol)
	ctx := ctxT(t, 40*time.Second)

	// First batch consumes the head of the cached grant's range.
	first := [][]byte{[]byte("a0"), []byte("a1"), []byte("a2")}
	if _, err := l.AppendBatch(ctx, first); err != nil {
		t.Fatal(err)
	}

	// Another client recovers mid-range: epoch 1 -> 2.
	l2 := openLog(t, c, "client.2", "log0", pol)
	if err := l2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if l2.Epoch() < 2 {
		t.Fatalf("epoch after recovery = %d, want >= 2", l2.Epoch())
	}

	// The stale client's next batch must transparently resync (its
	// cached epoch 1 is rejected ESTALE by the sealed stripes).
	second := [][]byte{[]byte("b0"), []byte("b1"), []byte("b2"), []byte("b3")}
	positions, err := l.AppendBatch(ctx, second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() < 2 {
		t.Fatalf("stale client epoch = %d after resync, want >= 2", l.Epoch())
	}
	for i, pos := range positions {
		data, err := l.Read(ctx, pos)
		if err != nil || string(data) != string(second[i]) {
			t.Fatalf("post-recovery entry %d at %d = %q, %v", i, pos, data, err)
		}
	}
	// Nothing from the first batch was lost.
	for i := range first {
		data, err := l2.Read(ctx, uint64(i))
		if err != nil || string(data) != string(first[i]) {
			t.Fatalf("pre-recovery entry %d = %q, %v", i, data, err)
		}
	}
}
