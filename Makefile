GO ?= go

# Chaos harness knobs: `make chaos SCENARIO=sequencer-failover SEED=7`
# replays one scenario exactly; the default sweeps every scenario.
SCENARIO ?= all
SEED ?= 1

# lint-diff baseline: `make lint-diff BASE=origin/main` reports only
# findings in packages with .go files changed since BASE.
BASE ?= HEAD~1

.PHONY: build test race vet lint lint-json lint-sarif lint-diff lint-fixtures \
	bench bench-smoke bench-json chaos chaos-race cover bench-compare ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (internal/analysis): epochguard,
# lockblock, errdrop, sleepsync, ctxleak, fieldguard, goleak, chanlife,
# the cross-package protocol passes lockorder, rpcflow, retrysafe, and
# the ownership/aliasing passes cowalias, poolsafe, sendshare.
# Fails on any unsuppressed finding; suppressions require
# //lint:ignore <pass> <reason> and are budgeted by TestWaiverBudget.
# The time budget is a smoke check that the 14-pass suite stays fast
# enough for the edit loop; a typical run is ~2s, so 3m only trips on a
# pathological slowdown (the JSON report records elapsed_ms).
LINT_BUDGET ?= 3m

lint:
	$(GO) run ./cmd/malacolint -timebudget $(LINT_BUDGET) ./...

# Same gate, but the findings land in malacolint-report.json (CI uploads
# it as an artifact). Still fails the build on any finding.
lint-json:
	$(GO) run ./cmd/malacolint -json -timebudget $(LINT_BUDGET) ./... > malacolint-report.json; \
	status=$$?; cat malacolint-report.json; exit $$status

# The JSON gate plus a SARIF 2.1.0 log for code-scanning upload; witness
# chains land as relatedLocations.
lint-sarif:
	$(GO) run ./cmd/malacolint -json -sarif malacolint.sarif -timebudget $(LINT_BUDGET) ./... > malacolint-report.json; \
	status=$$?; cat malacolint-report.json; exit $$status

# Fast pre-gate: the whole program is still loaded (cross-package facts
# stay global), but only findings in packages changed since $(BASE) are
# reported.
lint-diff:
	$(GO) run ./cmd/malacolint -diff $(BASE) ./...

# The analyzers' own golden-fixture tests plus the waiver budget.
lint-fixtures:
	$(GO) test -count=1 -run 'TestEpochGuard|TestLockBlock|TestErrDrop|TestSleepSync|TestCtxLeak|TestFieldGuard|TestGoLeak|TestChanLife|TestLockOrder|TestRPCFlow|TestRetrySafe|TestCowAlias|TestPoolSafe|TestSendShare|TestCrossPackageFacts|TestSARIF|TestDedupe|TestWaiverBudget|TestMalformedSuppression' ./internal/analysis

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# One iteration of every benchmark so they cannot rot; part of ci.
# internal/script rides along for the VM microbenches, internal/cdc for
# the chunker throughput bench, internal/wal for the group-commit and
# replay benches.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ . ./internal/script/ ./internal/cdc/ ./internal/wal/

# Record the serial-vs-batched append comparison (PR 2's acceptance
# numbers) in BENCH_pr2.json, the serial-vs-pipelined replicated
# write comparison plus the ZLog end-to-end number (PR 3's) in
# BENCH_pr3.json, and the interpreter-vs-VM policy script plus the
# legacy-vs-warm OpCall comparison (PR 7's, with -benchmem so the
# allocation criterion is recorded) in BENCH_pr7.json, and the
# flat-vs-deduped write pair plus the chunker throughput (PR 8's) in
# BENCH_pr8.json — floors pin the acceptance criteria (50%-dup corpus
# ships <= 0.6x the flat bytes; chunker >= 500 MB/s single-core) — and
# the WAL fsync-batching sweep plus replay throughput (PR 10's) in
# BENCH_pr10.json (floors: group commit >= 3x at batch 64 vs batch 1,
# replay >= 100 MB/s).
bench-json:
	$(GO) test -run=^$$ -bench='^BenchmarkZLogAppend(Serial|Batch)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_pr2.json
	@cat BENCH_pr2.json
	$(GO) test -run=^$$ -bench='^Benchmark(RadosWrite(Serial|Pipelined)|ZLogAppendReplicated)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_pr3.json
	@cat BENCH_pr3.json
	$(GO) test -run=^$$ -bench='^Benchmark(Script(Interp|VM)|OpCall(Legacy|Warm))$$' -benchmem -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_pr7.json
	@cat BENCH_pr7.json
	{ $(GO) test -run=^$$ -bench='^Benchmark(WriteFlat|WriteDeduped)$$' -benchtime 2x . ; \
	  $(GO) test -run=^$$ -bench='^BenchmarkChunker$$' -benchtime=1s ./internal/cdc/ ; } \
		| $(GO) run ./cmd/benchjson -out BENCH_pr8.json \
			-floor dedup_ratio_50=1.667 -floor chunker_mbps=500
	@cat BENCH_pr8.json
	$(GO) test -run=^$$ -bench='^BenchmarkWAL(Append|Replay)$$' -benchtime=1s ./internal/wal/ \
		| $(GO) run ./cmd/benchjson -out BENCH_pr10.json \
			-floor wal_group_commit_speedup=3.0 -floor wal_replay_mbps=100
	@cat BENCH_pr10.json

# Cluster-wide fault injection: boots a full cluster per scenario,
# injects the seeded fault script under client load, and audits the
# global invariants after heal. A failure prints the exact repro
# command and writes chaos-report.txt plus the WAL-backed scenarios'
# journal directories under chaos-wal/ (CI uploads both).
chaos:
	$(GO) run ./cmd/chaos -scenario $(SCENARIO) -seed $(SEED) -artifact chaos-report.txt -waldir chaos-wal

# The same invariants exercised under the race detector (plus the
# determinism and broken-recovery fixtures).
chaos-race:
	$(GO) test -race -count=1 -timeout 600s ./internal/chaos/

# Statement-coverage gate on the core packages. coverage.out is kept
# for CI to upload next to malacolint-report.json.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out \
		./internal/wire/ ./internal/rados/ ./internal/paxos/ \
		./internal/mon/ ./internal/mds/ ./internal/zlog/ \
		./internal/script/ ./internal/cdc/ ./internal/analysis/ \
		./internal/wal/
	$(GO) run ./cmd/covercheck -profile coverage.out

# Bench-regression gate: rerun the PR 2 and PR 3 benchmark pairs and
# compare the derived speedup ratios against the committed baselines.
# Raw ns/op shifts with hardware, but serial-vs-optimized ratios on the
# same host are stable; a >30% ratio drop fails.
bench-compare:
	$(GO) test -run=^$$ -bench='^BenchmarkZLogAppend(Serial|Batch)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -compare BENCH_pr2.json -tolerance 0.30
	$(GO) test -run=^$$ -bench='^Benchmark(RadosWrite(Serial|Pipelined)|ZLogAppendReplicated)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -compare BENCH_pr3.json -tolerance 0.30
	$(GO) test -run=^$$ -bench='^Benchmark(Script(Interp|VM)|OpCall(Legacy|Warm))$$' -benchmem -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -compare BENCH_pr7.json -tolerance 0.30
	{ $(GO) test -run=^$$ -bench='^Benchmark(WriteFlat|WriteDeduped)$$' -benchtime 2x . ; \
	  $(GO) test -run=^$$ -bench='^BenchmarkChunker$$' -benchtime=1s ./internal/cdc/ ; } \
		| $(GO) run ./cmd/benchjson -compare BENCH_pr8.json -tolerance 0.30 \
			-floor dedup_ratio_50=1.667 -floor chunker_mbps=500
	$(GO) test -run=^$$ -bench='^BenchmarkWAL(Append|Replay)$$' -benchtime=1s ./internal/wal/ \
		| $(GO) run ./cmd/benchjson -compare BENCH_pr10.json -tolerance 0.30 \
			-floor wal_group_commit_speedup=3.0 -floor wal_replay_mbps=100

ci: build vet lint-sarif lint-fixtures race bench-smoke chaos cover bench-compare
