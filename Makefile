GO ?= go

.PHONY: build test race vet lint lint-json lint-fixtures bench bench-smoke bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (internal/analysis): epochguard,
# lockblock, errdrop, sleepsync, ctxleak, fieldguard, goleak, chanlife.
# Fails on any unsuppressed finding; suppressions require
# //lint:ignore <pass> <reason> and are budgeted by TestWaiverBudget.
lint:
	$(GO) run ./cmd/malacolint ./...

# Same gate, but the findings land in malacolint-report.json (CI uploads
# it as an artifact). Still fails the build on any finding.
lint-json:
	$(GO) run ./cmd/malacolint -json ./... > malacolint-report.json; \
	status=$$?; cat malacolint-report.json; exit $$status

# The analyzers' own golden-fixture tests plus the waiver budget.
lint-fixtures:
	$(GO) test -count=1 -run 'TestEpochGuard|TestLockBlock|TestErrDrop|TestSleepSync|TestCtxLeak|TestFieldGuard|TestGoLeak|TestChanLife|TestWaiverBudget|TestMalformedSuppression' ./internal/analysis

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# One iteration of every benchmark so they cannot rot; part of ci.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Record the serial-vs-batched append comparison (PR 2's acceptance
# numbers) in BENCH_pr2.json, and the serial-vs-pipelined replicated
# write comparison plus the ZLog end-to-end number (PR 3's) in
# BENCH_pr3.json.
bench-json:
	$(GO) test -run=^$$ -bench='^BenchmarkZLogAppend(Serial|Batch)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_pr2.json
	@cat BENCH_pr2.json
	$(GO) test -run=^$$ -bench='^Benchmark(RadosWrite(Serial|Pipelined)|ZLogAppendReplicated)$$' -benchtime=1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_pr3.json
	@cat BENCH_pr3.json

ci: build vet lint-json lint-fixtures race bench-smoke
