GO ?= go

.PHONY: build test race vet lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (internal/analysis): epochguard,
# lockblock, errdrop, sleepsync, ctxleak. Fails on any unsuppressed
# finding; suppressions require //lint:ignore <pass> <reason>.
lint:
	$(GO) run ./cmd/malacolint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

ci: build vet lint race
