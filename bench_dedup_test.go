// Dedup data-path benchmarks (PR-8). BenchmarkWriteFlat and
// BenchmarkWriteDeduped push the same duplicate-bearing corpora through
// the flat WriteFull path and the content-addressed manifest path; each
// reports the payload bytes the cluster had to move per iteration as
// custom metrics, and cmd/benchjson derives dedup_ratio_{25,50,75} =
// flat wire bytes / deduped wire bytes from the pair. The PR-8
// acceptance pins the 50%-dup corpus at wire bytes <= 0.6x flat, i.e.
// dedup_ratio_50 >= 1.667.
package repro_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/rados"
	"repro/internal/workload"
)

// dedupBenchWindow is the logical object size both write paths store.
const dedupBenchWindow = 256 << 10

// dedupBenchCorpus builds the deterministic benchmark corpus for one
// duplicate ratio. Segments are larger than the max chunk size so the
// chunker sees genuine repeats, and the corpus spans many windows so
// later objects dedup against blocks earlier ones stored.
func dedupBenchCorpus(ratio float64) []byte {
	return workload.GenerateDupCorpus(1, workload.DupCorpusConfig{
		Size:        4 << 20,
		DupRatio:    ratio,
		SegmentSize: 128 << 10,
	})
}

// dedupBenchChunking keeps chunks small relative to the 64 KiB segment
// so duplicate segments resolve to duplicate blocks.
func dedupBenchChunking() *cdc.Config {
	return &cdc.Config{MinSize: 1 << 10, AvgSize: 4 << 10, MaxSize: 16 << 10, NormLevel: 2}
}

func dedupBenchCluster(b *testing.B) (*core.Cluster, *rados.Client) {
	b.Helper()
	cluster := bootB(b, core.Options{
		OSDs: 2, Pools: []string{"data"}, Replicas: 1,
		// Keep background reclamation out of the timed region; the
		// benchmark sweeps explicitly between iterations.
		OSD: rados.OSDConfig{GCInterval: time.Hour, GCGrace: time.Hour},
	})
	rc := cluster.NewRadosClient("client.dedupbench")
	if err := rc.RefreshMap(context.Background()); err != nil {
		b.Fatal(err)
	}
	return cluster, rc
}

// dedupBenchReset removes every object one iteration wrote and reclaims
// the orphaned blocks, so each iteration measures a cold store.
func dedupBenchReset(b *testing.B, cluster *core.Cluster, rc *rados.Client, objects int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < objects; i++ {
		if err := rc.Remove(ctx, "data", fmt.Sprintf("bench-doc%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	for {
		work := 0
		for _, o := range cluster.OSDs {
			delivered, reclaimed := o.SweepBlocks(0)
			work += delivered + reclaimed + o.QueuedRefDeltas()
		}
		if work == 0 {
			return
		}
	}
}

// BenchmarkWriteFlat stores each corpus window with a plain replicated
// WriteFull — the baseline the dedup ratio divides. Wire bytes per op
// is simply the logical payload, independent of duplicate ratio, so one
// corpus suffices.
func BenchmarkWriteFlat(b *testing.B) {
	cluster, rc := dedupBenchCluster(b)
	ctx := context.Background()
	corpus := dedupBenchCorpus(0.50)
	windows := len(corpus) / dedupBenchWindow
	var wire int64
	b.SetBytes(int64(len(corpus)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < windows; w++ {
			data := corpus[w*dedupBenchWindow : (w+1)*dedupBenchWindow]
			if err := rc.WriteFull(ctx, "data", fmt.Sprintf("bench-doc%d", w), data); err != nil {
				b.Fatal(err)
			}
			wire += int64(len(data))
		}
		b.StopTimer()
		dedupBenchReset(b, cluster, rc, windows)
		b.StartTimer()
	}
	b.ReportMetric(float64(wire)/float64(b.N), "wire_B/op")
	b.ReportMetric(float64(wire)/float64(b.N), "stored_B/op")
}

func benchWriteDeduped(b *testing.B, ratio float64) {
	cluster, rc := dedupBenchCluster(b)
	ctx := context.Background()
	corpus := dedupBenchCorpus(ratio)
	cfg := dedupBenchChunking()
	windows := len(corpus) / dedupBenchWindow
	var wire, stored int64
	b.SetBytes(int64(len(corpus)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < windows; w++ {
			data := corpus[w*dedupBenchWindow : (w+1)*dedupBenchWindow]
			st, err := rc.WriteDeduped(ctx, "data", fmt.Sprintf("bench-doc%d", w), data, cfg)
			if err != nil {
				b.Fatal(err)
			}
			wire += int64(st.WireBytes)
			stored += int64(st.StoredBytes)
		}
		b.StopTimer()
		dedupBenchReset(b, cluster, rc, windows)
		b.StartTimer()
	}
	b.ReportMetric(float64(wire)/float64(b.N), "wire_B/op")
	b.ReportMetric(float64(stored)/float64(b.N), "stored_B/op")
}

func BenchmarkWriteDeduped(b *testing.B) {
	b.Run("dup25", func(b *testing.B) { benchWriteDeduped(b, 0.25) })
	b.Run("dup50", func(b *testing.B) { benchWriteDeduped(b, 0.50) })
	b.Run("dup75", func(b *testing.B) { benchWriteDeduped(b, 0.75) })
}
