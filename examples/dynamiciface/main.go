// dynamiciface: the Section 4.2 co-design example — an object interface
// that atomically updates a matrix stored in the bytestream AND its row
// index stored in the omap, installed at runtime and upgraded in place
// without restarting a single daemon.
//
//	go run ./examples/dynamiciface
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

const matrixV1 = `
-- v1: append a row and index its extent
function put_row(cls)
	local sep = string.find(cls.input, ":")
	if sep == nil then error("EINVAL: want <row>:<values>") end
	local row = string.sub(cls.input, 1, sep - 1)
	local vals = string.sub(cls.input, sep + 1)
	local off = cls.size()
	cls.append(vals .. "\n")
	cls.omap_set("row." .. row, tostring(off) .. "," .. tostring(string.len(vals) + 1))
	return tostring(off)
end

function get_row(cls)
	local loc = cls.omap_get("row." .. cls.input)
	if loc == nil then error("ENOENT: no such row") end
	local comma = string.find(loc, ",")
	local off = tonumber(string.sub(loc, 1, comma - 1))
	local len = tonumber(string.sub(loc, comma + 1))
	return string.sub(cls.read(), off + 1, off + len - 1)
end
`

// v2 adds a row counter — a live upgrade of a deployed interface.
const matrixV2 = matrixV1 + `
function nrows(cls)
	local n = 0
	for i, k in pairs(cls.omap_keys("row.")) do n = n + 1 end
	return tostring(n)
end
`

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cluster, err := core.Boot(ctx, core.Options{
		Mons: 1, OSDs: 3, MDSs: 0, Pools: []string{"data"}, Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	monc := cluster.NewMonClient("client.admin")
	rc := cluster.NewRadosClient("client.app")

	fmt.Println("== installing 'matrix' interface v1 cluster-wide ==")
	if err := monc.InstallClass(ctx, "matrix", matrixV1, "metadata"); err != nil {
		log.Fatal(err)
	}
	//lint:ignore sleepsync demo pacing: the example waits out map propagation instead of subscribing to pushes
	time.Sleep(200 * time.Millisecond)
	if err := rc.RefreshMap(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== atomic matrix + index updates, executed next to the data ==")
	rows := []string{"0:3.1 4.1 5.9", "1:2.6 5.3 5.8", "2:9.7 9.3 2.3"}
	for _, r := range rows {
		off, err := rc.Call(ctx, "data", "m", "matrix", "put_row", []byte(r))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   put_row(%q) stored at offset %s\n", r, off)
	}
	row1, err := rc.Call(ctx, "data", "m", "matrix", "get_row", []byte("1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   get_row(1) -> %q\n", row1)

	fmt.Println("== upgrading to v2 in place (daemons keep running) ==")
	if err := monc.InstallClass(ctx, "matrix", matrixV2, "metadata"); err != nil {
		log.Fatal(err)
	}
	//lint:ignore sleepsync demo pacing: same propagation wait as the v1 install above
	time.Sleep(200 * time.Millisecond)
	if err := rc.RefreshMap(ctx); err != nil {
		log.Fatal(err)
	}
	n, err := rc.Call(ctx, "data", "m", "matrix", "nrows", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   nrows() -> %s (new method, old data, zero restarts)\n", n)

	// Show the versioning the monitor maintained.
	m, err := monc.GetOSDMap(ctx)
	if err != nil {
		log.Fatal(err)
	}
	cls := m.Classes["matrix"]
	fmt.Printf("   cluster map: class %q at version %d, map epoch %d\n", cls.Name, cls.Version, m.Epoch)
	fmt.Println("done.")
}
