package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestQuickstartSmoke runs the whole tour end to end and asserts the
// deterministic lines of its transcript.
func TestQuickstartSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out bytes.Buffer
	if err := run(ctx, &out); err != nil {
		t.Fatalf("quickstart: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		`read back: "hello, malacology"`,
		"app.version=1.0",
		"bump(5) -> 5",
		"bump(7) -> 12",
		"bump(30) -> 42",
		"next -> 1",
		"next -> 2",
		"next -> 3",
		"quickstart finished",
		"done.",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
