// Quickstart: boot a Malacology cluster, exercise each programmable
// interface once, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/types"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := run(ctx, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, out io.Writer) error {
	// 1. Boot a cluster: 1 monitor, 3 OSDs, 1 MDS, a "data" pool.
	fmt.Fprintln(out, "== booting cluster (1 mon, 3 osds, 1 mds) ==")
	cluster, err := core.Boot(ctx, core.Options{
		Mons: 1, OSDs: 3, MDSs: 1,
		Pools: []string{"data"}, Replicas: 2,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	m, err := core.Connect(ctx, cluster, "client.quickstart")
	if err != nil {
		return err
	}
	defer m.Close()

	// 2. Durability interface: store and fetch an object.
	fmt.Fprintln(out, "== durability: put/get an object ==")
	if err := m.PutObject(ctx, "data", "greeting", []byte("hello, malacology")); err != nil {
		return err
	}
	blob, err := m.GetObject(ctx, "data", "greeting")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "   read back: %q\n", blob)

	// 3. Service Metadata interface: a strongly consistent, versioned
	// key on the cluster map.
	fmt.Fprintln(out, "== service metadata: consistent cluster KV ==")
	if err := m.SetServiceMeta(ctx, types.MapOSD, "app.version", "1.0"); err != nil {
		return err
	}
	v, epoch, err := m.GetServiceMeta(ctx, types.MapOSD, "app.version")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "   app.version=%s at map epoch %d\n", v, epoch)

	// 4. Data I/O interface: install a script object class at runtime —
	// no daemon restarts — and call it next to the data.
	fmt.Fprintln(out, "== data i/o: install + call a script interface ==")
	counter := `
function bump(cls)
	local v = tonumber(cls.omap_get("n")) or 0
	v = v + cls.input
	cls.omap_set("n", tostring(v))
	return tostring(v)
end
`
	if err := m.InstallInterface(ctx, "accum", counter, "metadata"); err != nil {
		return err
	}
	// Give the map a beat to propagate, then call the new interface.
	//lint:ignore sleepsync demo pacing: the tour waits out gossip instead of subscribing to map pushes
	time.Sleep(200 * time.Millisecond)
	for _, delta := range []string{"5", "7", "30"} {
		res, err := m.CallInterface(ctx, "data", "tally", "accum", "bump", []byte(delta))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "   bump(%s) -> %s\n", delta, res)
	}

	// 5. File Type + Shared Resource interfaces: a sequencer inode with
	// a quota capability policy.
	fmt.Fprintln(out, "== sequencer inode with quota capability policy ==")
	pol := mds.CapPolicy{Cacheable: true, Quota: 100, Delay: 250 * time.Millisecond}
	if err := m.CreateSequencer(ctx, "/apps/quickstart/seq", pol); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		v, err := m.Next(ctx, "/apps/quickstart/seq")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "   next -> %d\n", v)
	}

	// 6. Centralized cluster log.
	if err := m.ClusterLog(ctx, "info", "quickstart finished"); err != nil {
		return err
	}
	entries, err := m.Mon().GetLog(ctx, 0)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== centralized cluster log (tail) ==")
	for _, e := range entries[max(0, len(entries)-4):] {
		fmt.Fprintf(out, "   [%s] %s: %s\n", e.Level, e.Source, e.Msg)
	}
	fmt.Fprintln(out, "done.")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
