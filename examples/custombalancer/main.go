// custombalancer: write a Mantle load-balancing policy as a script,
// store it durably in RADOS, activate it through the monitor, and watch
// the metadata cluster migrate hot sequencers off the overloaded rank
// (§5.1 and §6.2 of the paper).
//
//	go run ./examples/custombalancer
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mantle"
	"repro/internal/mds"
	"repro/internal/wire"
)

// policy: shed half of this rank's excess to the single least-loaded
// rank, and only under clear, sustained overload — loose thresholds
// make balancers thrash, since published loads lag a tick.
const policy = `
local total = 0
local n = 0
local minr = whoami
local minload = mds[whoami]["load"]
for r, m in pairs(mds) do
	total = total + m["load"]
	n = n + 1
	if m["load"] < minload then
		minr = r
		minload = m["load"]
	end
end
local avg = total / n
local my = mds[whoami]["load"]

if minr ~= whoami then
	targets[minr] = (my - avg) / 2
end
mode = "client"

function when()
	-- significantly hot here AND clearly cold there
	return my > avg * 1.5 and minload < avg * 0.5
end
`

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	tick := 300 * time.Millisecond
	var netRef *wire.Network
	cluster, err := core.Boot(ctx, core.Options{
		Mons: 1, OSDs: 3, MDSs: 3,
		MDS: mds.Config{
			HandleTime:      50 * time.Microsecond,
			ServiceTime:     50 * time.Microsecond,
			BalanceInterval: tick,
		},
		MDSBalancer: func(rank int) mds.Balancer {
			var once sync.Once
			var b *mantle.Balancer
			return mds.BalancerFunc(func(ctx context.Context, in mds.BalancerInput) (mds.Decision, error) {
				// Lazily bind one Mantle balancer per rank once the
				// network exists (policy state is per rank).
				once.Do(func() {
					b = mantle.NewBalancer(netRef, wire.Addr(fmt.Sprintf("mantle.%d", rank)), []int{0}, "metadata", tick)
				})
				return b.Decide(ctx, in)
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	netRef = cluster.Net
	defer cluster.Stop()

	// Install the policy: durable body in RADOS + versioned pointer in
	// the MDS map (the two-step flow of §5.1.1-5.1.2).
	rc := cluster.NewRadosClient("client.admin.rados")
	monc := cluster.NewMonClient("client.admin.mon")
	fmt.Println("== installing policy object 'spread-v1' and activating it ==")
	if err := mantle.InstallPolicy(ctx, rc, monc, "metadata", "spread-v1", policy); err != nil {
		log.Fatal(err)
	}

	// Create three hot sequencers, all on rank 0, and hammer them.
	fmt.Println("== creating 3 sequencers on rank 0 and loading them ==")
	setup := cluster.NewMDSClient("client.setup")
	if err := setup.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer setup.Stop()
	rt := mds.CapPolicy{}
	for i := 0; i < 3; i++ {
		if err := setup.Open(ctx, fmt.Sprintf("/seq%d", i), mds.TypeSequencer, &rt); err != nil {
			log.Fatal(err)
		}
	}
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		for c := 0; c < 3; c++ {
			cl := cluster.NewMDSClient(fmt.Sprintf("client.s%dc%d", i, c))
			if err := cl.Start(ctx); err != nil {
				log.Fatal(err)
			}
			defer cl.Stop()
			path := fmt.Sprintf("/seq%d", i)
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					cctx, ccancel := context.WithTimeout(ctx, 3*time.Second)
					_, _ = cl.Next(cctx, path)
					ccancel()
				}
			}()
		}
	}

	// Watch inode placement evolve as the policy migrates load.
	fmt.Println("== placement over time (inodes per rank) ==")
	for t := 0; t < 12; t++ {
		//lint:ignore sleepsync demo pacing: sampling placement on a human-readable cadence
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("   t=%4.1fs ", float64(t+1)*0.5)
		for r, srv := range cluster.MDSs {
			fmt.Printf(" rank%d=%d", r, srv.NumInodes())
		}
		fmt.Println()
	}
	close(stop)

	// Migration decisions and version changes land in the cluster log.
	entries, err := monc.GetLog(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== cluster log (migration events) ==")
	for _, e := range entries {
		fmt.Printf("   [%s] %s: %s\n", e.Level, e.Source, e.Msg)
	}
	fmt.Println("done.")
}
