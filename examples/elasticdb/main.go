// elasticdb: the "elastic cloud database" of the paper's future work
// (§7), built over ZLog: three database nodes share one totally-ordered
// log; optimistic transactions resolve identically everywhere; a
// checkpoint lets late nodes skip history.
//
//	go run ./examples/elasticdb
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/kvdb"
	"repro/internal/mds"
	"repro/internal/wire"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	cluster, err := core.Boot(ctx, core.Options{
		Mons: 1, OSDs: 3, MDSs: 1, Pools: []string{"db"}, Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	open := func(name string) *kvdb.DB {
		db, err := kvdb.Open(ctx, cluster.Net, wire.Addr("client."+name), cluster.MonIDs(), kvdb.Options{
			Name: "inventory", Pool: "db",
			SeqPolicy: mds.CapPolicy{Cacheable: true, Quota: 64, Delay: 100 * time.Millisecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		return db
	}

	fmt.Println("== two nodes, one log-structured database ==")
	n1, n2 := open("n1"), open("n2")
	defer n1.Close()
	defer n2.Close()

	if err := n1.Put(ctx, "widgets", "100"); err != nil {
		log.Fatal(err)
	}
	if err := n2.Put(ctx, "gadgets", "40"); err != nil {
		log.Fatal(err)
	}
	v, _, _, _ := n2.Get(ctx, "widgets")
	fmt.Printf("   n2 reads n1's write: widgets=%s\n", v)

	fmt.Println("== optimistic concurrency: racing CAS, one winner ==")
	_, ver, _, _ := n1.Get(ctx, "widgets")
	err1 := n1.CAS(ctx, "widgets", ver, "99")  // sell one
	err2 := n2.CAS(ctx, "widgets", ver, "150") // restock
	report := func(name string, err error) {
		switch {
		case err == nil:
			fmt.Printf("   %s: committed\n", name)
		case errors.Is(err, kvdb.ErrConflict):
			fmt.Printf("   %s: conflict (retry with fresh version)\n", name)
		default:
			log.Fatal(err)
		}
	}
	report("n1 sell", err1)
	report("n2 restock", err2)
	v1, _, _, _ := n1.Get(ctx, "widgets")
	v2, _, _, _ := n2.Get(ctx, "widgets")
	fmt.Printf("   both nodes agree: n1=%s n2=%s\n", v1, v2)

	fmt.Println("== checkpoint, trim, then attach a brand-new node ==")
	for i := 0; i < 25; i++ {
		if err := n1.Put(ctx, fmt.Sprintf("sku-%d", i), fmt.Sprint(i*3)); err != nil {
			log.Fatal(err)
		}
	}
	if err := n1.Checkpoint(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   checkpoint written; log prefix trimmed")

	n3 := open("n3") // elastic scale-out: current immediately
	defer n3.Close()
	fmt.Printf("   fresh node n3 sees %d keys without replaying trimmed history\n", n3.Len())
	v, _, _, _ = n3.Get(ctx, "sku-7")
	fmt.Printf("   n3 sku-7 = %s\n", v)
	fmt.Println("done.")
}
