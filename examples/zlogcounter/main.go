// zlogcounter: a replicated state machine over the ZLog shared log, in
// the style of Tango / the database systems the paper cites as shared-
// log consumers (§5.2). Three "nodes" apply bank-transfer commands from
// the log; because the log gives one total order, all replicas converge
// to identical balances. The example then kills the sequencer's state,
// runs CORFU recovery, and keeps appending.
//
//	go run ./examples/zlogcounter
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/wire"
	"repro/internal/zlog"
)

// command is one state-machine operation.
type command struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int64  `json:"amount"`
}

// replica is a state machine that tails the log.
type replica struct {
	name     string
	log      *zlog.Log
	applied  uint64
	balances map[string]int64
}

func newReplica(ctx context.Context, cluster *core.Cluster, name string) (*replica, error) {
	l, err := zlog.Open(ctx, cluster.Net, wire.Addr("client."+name), cluster.MonIDs(), zlog.Options{
		Name: "bank", Pool: "zlog",
		// Bursty appenders benefit from the cached-sequencer mode (§5.2.1).
		SeqPolicy: mds.CapPolicy{Cacheable: true, Quota: 64, Delay: 100 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	return &replica{name: name, log: l, balances: map[string]int64{}}, nil
}

// catchUp applies every entry up to the tail.
func (r *replica) catchUp(ctx context.Context) error {
	tail, err := r.log.Tail(ctx)
	if err != nil {
		return err
	}
	for ; r.applied < tail; r.applied++ {
		data, err := r.log.Read(ctx, r.applied)
		if errors.Is(err, zlog.ErrFilled) || errors.Is(err, zlog.ErrTrimmed) {
			continue // hole: skip
		}
		if err != nil {
			return fmt.Errorf("read %d: %w", r.applied, err)
		}
		var c command
		if err := json.Unmarshal(data, &c); err != nil {
			return err
		}
		r.balances[c.From] -= c.Amount
		r.balances[c.To] += c.Amount
	}
	return nil
}

func (r *replica) submit(ctx context.Context, c command) error {
	data, _ := json.Marshal(c)
	_, err := r.log.Append(ctx, data)
	return err
}

func (r *replica) summary() string {
	keys := make([]string, 0, len(r.balances))
	for k := range r.balances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d ", k, r.balances[k])
	}
	return s
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	cluster, err := core.Boot(ctx, core.Options{
		Mons: 1, OSDs: 3, MDSs: 1, Pools: []string{"zlog"}, Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	fmt.Println("== three replicas sharing one totally-ordered log ==")
	var replicas []*replica
	for _, name := range []string{"alpha", "beta", "gamma"} {
		r, err := newReplica(ctx, cluster, name)
		if err != nil {
			log.Fatal(err)
		}
		defer r.log.Close()
		replicas = append(replicas, r)
	}

	// Each replica concurrently submits transfers; the log serializes.
	transfers := []command{
		{"treasury", "alice", 100},
		{"treasury", "bob", 250},
		{"alice", "bob", 30},
		{"bob", "carol", 120},
		{"carol", "alice", 5},
		{"treasury", "carol", 75},
	}
	for i, tr := range transfers {
		if err := replicas[i%3].submit(ctx, tr); err != nil {
			log.Fatal(err)
		}
	}

	for _, r := range replicas {
		if err := r.catchUp(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-6s applied=%-3d %s\n", r.name, r.applied, r.summary())
	}
	fmt.Println("   (all replicas identical: the log is the serialization point)")

	// Sequencer recovery: recompute the tail from the storage interface
	// (seal + maxpos), then continue appending (§5.2.2).
	fmt.Println("== CORFU sequencer recovery ==")
	if err := replicas[0].log.Recover(ctx); err != nil {
		log.Fatal(err)
	}
	tail, err := replicas[0].log.Tail(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   recovered tail = %d (== %d submitted commands)\n", tail, len(transfers))

	if err := replicas[1].submit(ctx, command{"treasury", "dave", 40}); err != nil {
		log.Fatal(err)
	}
	for _, r := range replicas {
		if err := r.catchUp(ctx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("   after recovery: %s\n", replicas[2].summary())
	fmt.Println("done.")
}
